//! The simulated multi-speed disk: queue, state machine, and energy accrual.
//!
//! [`Disk`] is an event-driven object. The simulation driver (the `array`
//! crate) owns the global event queue; the disk exposes
//! [`Disk::next_event_time`] and expects [`Disk::on_event`] to be called
//! exactly at that time. Between events the disk's state is piecewise
//! constant, which lets [`Disk::accrue`] attribute energy exactly.
//!
//! # State machine
//!
//! ```text
//!            request_speed(Level l')            ramp done
//! Spinning(l) ─────────────────────► Transitioning ─────────► Spinning(l')
//!     ▲                                   ▲    │
//!     │ ramp done                         │    └──► Standby (if target standby)
//!     │                                   │ auto spin-up on demand
//!     └──────────── Transitioning ◄──── Standby ◄── request_speed(Standby)
//! ```
//!
//! Speed changes requested while a request is in service (or another ramp is
//! running) are *latched* and applied at the next quiescent point — the disk
//! never aborts a request or a ramp halfway.
//!
//! # Service discipline
//!
//! Two FIFO queues: foreground first, migration only when no foreground
//! request waits. One request occupies the head at a time. Service time is
//! seek + rotational latency (sampled uniformly per request from the disk's
//! deterministic RNG) + transfer; see [`crate::service`].

use crate::power::PowerModel;
use crate::request::{Completion, DiskRequest, RequestClass};
use crate::service::ServiceModel;
use crate::spec::{DiskSpec, SpeedLevel};
use faults::ReliabilityLedger;
use simkit::{DetRng, EnergyComponent, EnergyLedger, SimTime, TimeWeighted};
use std::collections::VecDeque;

/// Where a speed change is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinTarget {
    /// Spin at the given level.
    Level(SpeedLevel),
    /// Stop the platters entirely.
    Standby,
}

/// The disk's spindle state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SpinState {
    /// Platters stopped.
    Standby,
    /// Serving (or ready to serve) at a level.
    Spinning(SpeedLevel),
    /// Ramping toward `target`; done at `until`.
    Transitioning {
        target: SpinTarget,
        until: SimTime,
        power_w: f64,
    },
}

/// A request currently occupying the head.
#[derive(Debug, Clone, Copy)]
struct InService {
    req: DiskRequest,
    start: SimTime,
    /// Seek phase ends here; rotation+transfer run until `finish`.
    seek_end: SimTime,
    finish: SimTime,
    end_cylinder: u32,
}

/// Aggregate per-disk statistics.
#[derive(Debug, Clone)]
pub struct DiskStats {
    /// Foreground requests completed.
    pub fg_completed: u64,
    /// Migration requests completed.
    pub mig_completed: u64,
    /// Total sectors transferred (both classes).
    pub sectors_transferred: u64,
    /// Seconds the head spent in service.
    pub busy_s: f64,
    /// Number of spindle speed/standby transitions started.
    pub transitions: u64,
    /// Transitions stretched by an injected slow-transition fault window.
    pub slow_transitions: u64,
    /// Time-weighted queue depth (foreground + migration + in-service).
    pub queue_depth: TimeWeighted,
}

/// A simulated multi-speed disk.
///
/// # Examples
/// ```
/// use diskmodel::{Disk, DiskRequest, DiskSpec, IoKind, RequestClass};
/// use simkit::SimTime;
///
/// let spec = DiskSpec::ultrastar_multispeed(6);
/// let mut disk = Disk::new(0, &spec, 42, spec.top_level());
/// disk.submit(SimTime::ZERO, DiskRequest {
///     id: 1,
///     sector: 1_000_000,
///     sectors: 16, // 8 KiB
///     kind: IoKind::Read,
///     class: RequestClass::Foreground,
///     issue_time: SimTime::ZERO,
/// });
/// // Drive the disk's event loop to completion.
/// let t = disk.next_event_time().expect("service scheduled");
/// let done = disk.on_event(t);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].service_s > 0.0 && done[0].service_s < 0.05);
/// ```
pub struct Disk {
    id: usize,
    service_model: ServiceModel,
    power: PowerModel,
    rng: DetRng,
    auto_spinup: bool,

    state: SpinState,
    /// Speed change to apply at the next quiescent point.
    pending: Option<SpinTarget>,
    /// Level to resume at when spun up on demand from standby.
    resume_level: SpeedLevel,

    fg_queue: VecDeque<DiskRequest>,
    mig_queue: VecDeque<DiskRequest>,
    in_service: Option<InService>,
    head_cylinder: u32,

    energy: EnergyLedger,
    last_accrual: SimTime,
    idle_since: Option<SimTime>,
    stats: DiskStats,
    num_levels: usize,

    ledger: ReliabilityLedger,
    failed: bool,
    /// Injected slow-transition fault: ramps started before `slow_until`
    /// take `slow_factor ×` their nominal duration (and energy).
    slow_factor: f64,
    slow_until: SimTime,

    /// When set, every counted transition appends a [`TransitionRecord`]
    /// for the telemetry layer to drain (off by default: the hot path
    /// stays allocation-free).
    record_transitions: bool,
    transition_log: Vec<TransitionRecord>,
}

/// Why a disk started a speed transition (see [`Disk::drain_transitions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// A power policy called [`Disk::request_speed`] at a quiescent point.
    Policy,
    /// A request arrived at a standby disk and auto spin-up kicked in.
    DemandWake,
    /// A latched target applied when the current service/ramp finished.
    Latched,
}

/// One recorded speed transition, drained by the telemetry layer.
///
/// `from`/`to` use the event-stream tier convention: the speed-level
/// index, or `-1` for standby.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionRecord {
    /// When the ramp began.
    pub time_s: f64,
    /// Tier left (`-1` = standby).
    pub from: i32,
    /// Tier targeted (`-1` = standby).
    pub to: i32,
    /// What triggered it.
    pub cause: TransitionCause,
    /// True if a sticky-spindle fault stretched this ramp.
    pub stretched: bool,
}

impl Disk {
    /// Creates a disk spinning at `initial_level`, head parked at cylinder 0.
    ///
    /// `seed` feeds the disk's private rotational-latency RNG stream;
    /// `auto_spinup` controls whether a foreground arrival wakes a standby
    /// disk automatically (true for every policy in this suite).
    ///
    /// # Panics
    /// Panics if the spec fails validation or `initial_level` is out of
    /// range.
    pub fn new(id: usize, spec: &DiskSpec, seed: u64, initial_level: SpeedLevel) -> Disk {
        spec.validate().expect("invalid disk spec");
        assert!(initial_level.index() < spec.num_levels(), "bad level");
        Disk {
            id,
            service_model: ServiceModel::new(spec),
            power: PowerModel::new(spec),
            rng: DetRng::new(seed, &format!("disk-{id}")),
            auto_spinup: true,
            state: SpinState::Spinning(initial_level),
            pending: None,
            resume_level: initial_level,
            fg_queue: VecDeque::new(),
            mig_queue: VecDeque::new(),
            in_service: None,
            head_cylinder: 0,
            energy: EnergyLedger::new(),
            last_accrual: SimTime::ZERO,
            idle_since: Some(SimTime::ZERO),
            stats: DiskStats {
                fg_completed: 0,
                mig_completed: 0,
                sectors_transferred: 0,
                busy_s: 0.0,
                transitions: 0,
                slow_transitions: 0,
                queue_depth: TimeWeighted::new(SimTime::ZERO, 0.0),
            },
            num_levels: spec.num_levels(),
            ledger: ReliabilityLedger::default(),
            failed: false,
            slow_factor: 1.0,
            slow_until: SimTime::ZERO,
            record_transitions: false,
            transition_log: Vec::new(),
        }
    }

    /// Enables (or disables) transition recording for telemetry.
    pub fn set_transition_recording(&mut self, on: bool) {
        self.record_transitions = on;
    }

    /// Takes all transition records accumulated since the last drain,
    /// oldest first. Cheap (no allocation) when recording is off.
    pub fn drain_transitions(&mut self) -> Vec<TransitionRecord> {
        std::mem::take(&mut self.transition_log)
    }

    /// Disables automatic spin-up on demand (requests then wait in the
    /// queue until a policy calls [`Disk::request_speed`]).
    pub fn set_auto_spinup(&mut self, on: bool) {
        self.auto_spinup = on;
    }

    /// This disk's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The service model (geometry, seek curve) backing this disk.
    pub fn service_model(&self) -> &ServiceModel {
        &self.service_model
    }

    /// The power model backing this disk.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The current speed level, or `None` while in standby or ramping.
    pub fn current_level(&self) -> Option<SpeedLevel> {
        match self.state {
            SpinState::Spinning(l) => Some(l),
            _ => None,
        }
    }

    /// The level the disk serves at / will next serve at: the current level,
    /// the ramp target, or the resume level from standby.
    pub fn effective_level(&self) -> SpeedLevel {
        match self.state {
            SpinState::Spinning(l) => l,
            SpinState::Transitioning {
                target: SpinTarget::Level(l),
                ..
            } => l,
            _ => self.resume_level,
        }
    }

    /// True if the platters are stopped.
    pub fn is_standby(&self) -> bool {
        matches!(self.state, SpinState::Standby)
    }

    /// True while ramping between speeds.
    pub fn is_transitioning(&self) -> bool {
        matches!(self.state, SpinState::Transitioning { .. })
    }

    /// True if a request occupies the head.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Number of queued (not yet in-service) requests.
    pub fn queue_len(&self) -> usize {
        self.fg_queue.len() + self.mig_queue.len()
    }

    /// Number of queued foreground requests.
    pub fn fg_queue_len(&self) -> usize {
        self.fg_queue.len()
    }

    /// How long the disk has been spinning idle (no service, empty queue),
    /// or `None` if it is not idle.
    pub fn idle_duration(&self, now: SimTime) -> Option<f64> {
        self.idle_since.map(|t| now.saturating_since(t).as_secs())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Energy consumed so far, accrued up to `now`.
    pub fn energy(&mut self, now: SimTime) -> EnergyLedger {
        self.accrue(now);
        self.energy.clone()
    }

    /// True once the disk has suffered a whole-disk failure.
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// Reliability ledger snapshot, accrued up to `now`.
    pub fn reliability(&mut self, now: SimTime) -> ReliabilityLedger {
        self.accrue(now);
        self.ledger.clone()
    }

    /// Injects a slow-transition fault window: ramps started before `until`
    /// take `factor ×` their nominal duration (energy scales with it, since
    /// transition power is unchanged).
    pub fn set_slow_transitions(&mut self, factor: f64, until: SimTime) {
        assert!(factor > 0.0, "non-positive slow factor");
        self.slow_factor = factor;
        self.slow_until = until;
    }

    /// Kills the disk at `now`: the spindle stops drawing power, the ledger
    /// records the failure, and every queued or in-flight request is drained
    /// and returned so the driver can redirect or account for it. All later
    /// submissions and speed requests are ignored.
    pub fn fail(&mut self, now: SimTime) -> Vec<DiskRequest> {
        if self.failed {
            return Vec::new();
        }
        self.accrue(now);
        self.failed = true;
        self.ledger.note_failure(now.as_secs());
        let mut dropped = Vec::new();
        if let Some(svc) = self.in_service.take() {
            dropped.push(svc.req);
            self.stats.queue_depth.add(now, -1.0);
        }
        for req in self.fg_queue.drain(..).chain(self.mig_queue.drain(..)) {
            dropped.push(req);
            self.stats.queue_depth.add(now, -1.0);
        }
        self.state = SpinState::Standby;
        self.pending = None;
        self.idle_since = None;
        dropped
    }

    /// The next instant this disk needs [`Disk::on_event`] called, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.failed {
            return None;
        }
        let t1 = self.in_service.as_ref().map(|s| s.finish);
        let t2 = match self.state {
            SpinState::Transitioning { until, .. } => Some(until),
            _ => None,
        };
        match (t1, t2) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // ------------------------------------------------------------------
    // Energy accrual
    // ------------------------------------------------------------------

    /// Attributes energy (and reliability duty-cycle time) from the last
    /// accrual point up to `now`.
    fn accrue(&mut self, now: SimTime) {
        let from = self.last_accrual;
        if now <= from {
            return;
        }
        if self.failed {
            // A dead disk draws no power and accrues no duty cycle.
            self.last_accrual = now;
            return;
        }
        let dt_s = (now - from).as_secs();
        match self.state {
            SpinState::Standby => self.ledger.accrue_standby(dt_s),
            _ => self.ledger.accrue_active(dt_s),
        }
        match self.state {
            SpinState::Standby => {
                let dt = (now - from).as_secs();
                self.energy
                    .add(EnergyComponent::Standby, self.power.standby_w() * dt);
            }
            SpinState::Transitioning { power_w, .. } => {
                let dt = (now - from).as_secs();
                self.energy.add(EnergyComponent::Transition, power_w * dt);
            }
            SpinState::Spinning(level) => {
                if let Some(svc) = self.in_service {
                    self.accrue_service(from, now, level, &svc);
                } else {
                    let dt = (now - from).as_secs();
                    self.energy
                        .add(EnergyComponent::IdleSpin, self.power.idle_w(level) * dt);
                }
            }
        }
        self.last_accrual = now;
    }

    fn accrue_service(&mut self, from: SimTime, now: SimTime, level: SpeedLevel, svc: &InService) {
        let migration = svc.req.class == RequestClass::Migration;
        // Seek phase: [start, seek_end)
        let seek_lo = from.max(svc.start);
        let seek_hi = now.min(svc.seek_end);
        if seek_hi > seek_lo {
            let j = self.power.seek_w(level) * (seek_hi - seek_lo).as_secs();
            let comp = if migration {
                EnergyComponent::Migration
            } else {
                EnergyComponent::Seek
            };
            self.energy.add(comp, j);
        }
        // Rotation + transfer phase: [seek_end, finish)
        let xf_lo = from.max(svc.seek_end);
        let xf_hi = now.min(svc.finish);
        if xf_hi > xf_lo {
            let j = self.power.transfer_w(level) * (xf_hi - xf_lo).as_secs();
            let comp = if migration {
                EnergyComponent::Migration
            } else {
                EnergyComponent::Transfer
            };
            self.energy.add(comp, j);
        }
    }

    // ------------------------------------------------------------------
    // Mutators (driver API)
    // ------------------------------------------------------------------

    /// Enqueues a request at `now`. May start service or an automatic
    /// spin-up; the driver must re-read [`Disk::next_event_time`] afterwards.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) {
        if self.failed {
            // The driver redirects around dead disks; a stray submission is
            // silently dropped rather than stranded in a queue that will
            // never drain.
            return;
        }
        self.accrue(now);
        self.idle_since = None;
        match req.class {
            RequestClass::Foreground => self.fg_queue.push_back(req),
            RequestClass::Migration => self.mig_queue.push_back(req),
        }
        self.stats.queue_depth.add(now, 1.0);

        match self.state {
            SpinState::Standby => {
                if self.auto_spinup {
                    self.begin_transition(
                        now,
                        SpinTarget::Level(self.resume_level),
                        TransitionCause::DemandWake,
                    );
                }
            }
            SpinState::Transitioning { .. } => {
                // Heading to standby while work arrives: bounce back up.
                self.ensure_wake_pending();
            }
            SpinState::Spinning(_) => {
                if self.in_service.is_none() {
                    self.try_start_service(now);
                }
            }
        }
    }

    /// Wake invariant: a disk heading to (or latched for) standby while
    /// requests wait must come back up, or the queue would strand —
    /// on-demand wake-up only triggers on *new* submissions.
    fn ensure_wake_pending(&mut self) {
        if !self.auto_spinup {
            return;
        }
        let queued = !self.fg_queue.is_empty() || !self.mig_queue.is_empty();
        if !queued {
            return;
        }
        let heading_down = matches!(
            self.state,
            SpinState::Transitioning {
                target: SpinTarget::Standby,
                ..
            }
        );
        if heading_down && self.pending.is_none() {
            self.pending = Some(SpinTarget::Level(self.resume_level));
        }
        if self.pending == Some(SpinTarget::Standby) {
            self.pending = Some(SpinTarget::Level(self.resume_level));
        }
    }

    /// Requests a spindle state change. Applied immediately if the disk is
    /// quiescent, otherwise latched and applied when the current request or
    /// ramp finishes.
    ///
    /// # Panics
    /// Panics if the target level is out of range.
    pub fn request_speed(&mut self, now: SimTime, target: SpinTarget) {
        if let SpinTarget::Level(l) = target {
            assert!(l.index() < self.num_levels, "bad target level");
        }
        if self.failed {
            return;
        }
        self.accrue(now);
        match self.state {
            SpinState::Spinning(cur) => {
                if SpinTarget::Level(cur) == target {
                    self.pending = None;
                    return;
                }
                if self.in_service.is_some() {
                    self.pending = Some(target);
                } else {
                    self.pending = None;
                    self.begin_transition(now, target, TransitionCause::Policy);
                }
            }
            SpinState::Standby => {
                if target == SpinTarget::Standby {
                    self.pending = None;
                    return;
                }
                self.pending = None;
                self.begin_transition(now, target, TransitionCause::Policy);
            }
            SpinState::Transitioning { target: cur, .. } => {
                if cur == target {
                    self.pending = None;
                } else {
                    self.pending = Some(target);
                }
                // Never let a standby directive strand queued work.
                self.ensure_wake_pending();
            }
        }
    }

    /// Handles the event due at `now` (service completion and/or ramp end)
    /// and returns any completed requests. The driver must call this exactly
    /// at [`Disk::next_event_time`].
    ///
    /// Convenience wrapper over [`Disk::poll_event`]; the hot simulation
    /// driver calls `poll_event` directly to avoid allocating a `Vec` per
    /// disk event.
    pub fn on_event(&mut self, now: SimTime) -> Vec<Completion> {
        self.poll_event(now).into_iter().collect()
    }

    /// Allocation-free form of [`Disk::on_event`]. A single head means at
    /// most one request finishes per event, so `Option` captures the full
    /// result.
    pub fn poll_event(&mut self, now: SimTime) -> Option<Completion> {
        self.accrue(now);
        if self.failed {
            return None;
        }
        let mut done = None;

        // Ramp end?
        if let SpinState::Transitioning { target, until, .. } = self.state {
            if until <= now {
                self.state = match target {
                    SpinTarget::Level(l) => {
                        self.resume_level = l;
                        SpinState::Spinning(l)
                    }
                    SpinTarget::Standby => SpinState::Standby,
                };
                self.apply_pending_or_continue(now);
                self.update_idle_marker(now);
            }
        }

        // Service completion?
        if let Some(svc) = self.in_service {
            if svc.finish <= now {
                self.in_service = None;
                self.head_cylinder = svc.end_cylinder;
                self.stats.queue_depth.add(now, -1.0);
                self.stats.busy_s += (svc.finish - svc.start).as_secs();
                self.stats.sectors_transferred += u64::from(svc.req.sectors);
                match svc.req.class {
                    RequestClass::Foreground => self.stats.fg_completed += 1,
                    RequestClass::Migration => self.stats.mig_completed += 1,
                }
                done = Some(Completion {
                    request: svc.req,
                    disk: self.id,
                    finish_time: svc.finish,
                    queue_delay_s: (svc.start - svc.req.issue_time).as_secs(),
                    service_s: (svc.finish - svc.start).as_secs(),
                });
                // Quiescent point: apply a latched speed change first, else
                // keep serving.
                self.apply_pending_or_continue(now);
                self.update_idle_marker(now);
            }
        }
        done
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Applies a latched spindle target at a quiescent point. A latched
    /// standby is cancelled (dropped) when requests are waiting and the
    /// disk auto-spins-up — descending would strand the queue, since
    /// on-demand wake-up only triggers on *new* submissions.
    fn apply_pending_or_continue(&mut self, now: SimTime) {
        if let Some(p) = self.pending.take() {
            let strands_queue = p == SpinTarget::Standby
                && self.auto_spinup
                && (!self.fg_queue.is_empty() || !self.mig_queue.is_empty());
            if strands_queue {
                self.try_start_service(now);
            } else {
                self.begin_transition(now, p, TransitionCause::Latched);
            }
        } else if matches!(self.state, SpinState::Spinning(_)) {
            self.try_start_service(now);
        }
    }

    fn update_idle_marker(&mut self, now: SimTime) {
        let idle = matches!(self.state, SpinState::Spinning(_))
            && self.in_service.is_none()
            && self.fg_queue.is_empty()
            && self.mig_queue.is_empty();
        if idle {
            if self.idle_since.is_none() {
                self.idle_since = Some(now);
            }
        } else {
            self.idle_since = None;
        }
    }

    fn begin_transition(&mut self, now: SimTime, target: SpinTarget, cause: TransitionCause) {
        debug_assert!(self.in_service.is_none(), "ramp while head busy");
        let trans = match (self.state, target) {
            (SpinState::Spinning(from), SpinTarget::Level(to)) => {
                if from == to {
                    // Nothing to do; stay spinning.
                    self.try_start_service(now);
                    return;
                }
                self.power.level_transition(from, to)
            }
            (SpinState::Spinning(from), SpinTarget::Standby) => {
                self.power.spindown_to_standby(from)
            }
            (SpinState::Standby, SpinTarget::Level(to)) => self.power.spinup_from_standby(to),
            (SpinState::Standby, SpinTarget::Standby) => return,
            (SpinState::Transitioning { .. }, _) => {
                // Back-to-back ramps happen at a ramp-end boundary; model the
                // second ramp from the first ramp's endpoint state, which
                // `on_event` has already committed before calling us.
                unreachable!("begin_transition called mid-transition")
            }
        };
        if trans.duration_s == 0.0 {
            // Degenerate ramp (identical RPM); commit instantly.
            self.state = match target {
                SpinTarget::Level(l) => SpinState::Spinning(l),
                SpinTarget::Standby => SpinState::Standby,
            };
            return;
        }
        self.stats.transitions += 1;
        self.ledger.note_transition();
        let mut duration_s = trans.duration_s;
        let stretched = now < self.slow_until;
        if stretched {
            // Sticky-spindle fault: the ramp takes longer at the same
            // transition power, so its energy scales with the stretch too.
            duration_s *= self.slow_factor;
            self.stats.slow_transitions += 1;
        }
        if self.record_transitions {
            let tier = |s: SpinTarget| match s {
                SpinTarget::Level(l) => l.index() as i32,
                SpinTarget::Standby => -1,
            };
            let from = match self.state {
                SpinState::Spinning(l) => l.index() as i32,
                SpinState::Standby => -1,
                SpinState::Transitioning { .. } => unreachable!("checked above"),
            };
            self.transition_log.push(TransitionRecord {
                time_s: now.as_secs(),
                from,
                to: tier(target),
                cause,
                stretched,
            });
        }
        self.state = SpinState::Transitioning {
            target,
            until: now + simkit::SimDuration::from_secs(duration_s),
            power_w: trans.energy_j / trans.duration_s,
        };
        self.idle_since = None;
    }

    fn try_start_service(&mut self, now: SimTime) {
        let SpinState::Spinning(level) = self.state else {
            return;
        };
        if self.in_service.is_some() {
            return;
        }
        let Some(req) = self
            .fg_queue
            .pop_front()
            .or_else(|| self.mig_queue.pop_front())
        else {
            self.update_idle_marker(now);
            return;
        };
        let rot_frac = self.rng.uniform01().min(0.999_999);
        let phases = self
            .service_model
            .service(&req, self.head_cylinder, level, rot_frac);
        let seek_end = now + simkit::SimDuration::from_secs(phases.seek_s);
        let finish =
            seek_end + simkit::SimDuration::from_secs(phases.rotation_s + phases.transfer_s);
        self.in_service = Some(InService {
            req,
            start: now,
            seek_end,
            finish,
            end_cylinder: phases.end_cylinder,
        });
        self.idle_since = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoKind;
    use simkit::SimDuration;

    fn spec() -> DiskSpec {
        DiskSpec::ultrastar_multispeed(6)
    }

    fn mk_disk() -> Disk {
        Disk::new(0, &spec(), 42, SpeedLevel(5))
    }

    fn fg_read(id: u64, sector: u64, at: SimTime) -> DiskRequest {
        DiskRequest {
            id,
            sector,
            sectors: 16,
            kind: IoKind::Read,
            class: RequestClass::Foreground,
            issue_time: at,
        }
    }

    /// Drives the disk through all pending events up to (and including) `until`.
    fn drain(disk: &mut Disk, until: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(t) = disk.next_event_time() {
            if t > until {
                break;
            }
            done.extend(disk.on_event(t));
        }
        done
    }

    #[test]
    fn serves_a_single_request() {
        let mut d = mk_disk();
        let t0 = SimTime::from_secs(1.0);
        d.submit(t0, fg_read(1, 1_000_000, t0));
        assert!(d.is_busy());
        let done = drain(&mut d, SimTime::from_secs(10.0));
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert_eq!(c.request.id, 1);
        assert_eq!(c.queue_delay_s, 0.0);
        assert!(c.service_s > 0.0 && c.service_s < 0.1, "{}", c.service_s);
        assert!(!d.is_busy());
        assert_eq!(d.stats().fg_completed, 1);
    }

    #[test]
    fn fifo_queueing_accumulates_delay() {
        let mut d = mk_disk();
        let t0 = SimTime::from_secs(0.0);
        for i in 0..5 {
            d.submit(t0, fg_read(i, i * 500_000, t0));
        }
        let done = drain(&mut d, SimTime::from_secs(10.0));
        assert_eq!(done.len(), 5);
        // Later requests wait longer.
        for w in done.windows(2) {
            assert!(w[1].queue_delay_s >= w[0].queue_delay_s);
        }
        assert_eq!(done[0].queue_delay_s, 0.0);
        assert!(done[4].queue_delay_s > 0.0);
    }

    #[test]
    fn migration_yields_to_foreground() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        // Occupy the head, then queue one migration and one foreground.
        d.submit(t0, fg_read(0, 0, t0));
        let mig = DiskRequest {
            id: 100,
            sector: 2_000_000,
            sectors: 256,
            kind: IoKind::Read,
            class: RequestClass::Migration,
            issue_time: t0,
        };
        d.submit(t0, mig);
        d.submit(t0, fg_read(1, 1_000_000, t0));
        let done = drain(&mut d, SimTime::from_secs(10.0));
        let order: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        assert_eq!(order, vec![0, 1, 100], "foreground must pre-empt migration");
        assert_eq!(d.stats().mig_completed, 1);
    }

    #[test]
    fn slower_level_gives_longer_service() {
        let run = |level: usize| {
            let mut d = Disk::new(0, &spec(), 7, SpeedLevel(level));
            let t0 = SimTime::ZERO;
            let mut total = 0.0;
            for i in 0..20 {
                d.submit(t0, fg_read(i, i * 1_000_000, t0));
            }
            for c in drain(&mut d, SimTime::from_secs(100.0)) {
                total += c.service_s;
            }
            total
        };
        assert!(run(0) > run(5) * 1.3);
    }

    #[test]
    fn speed_change_applies_when_idle() {
        let mut d = mk_disk();
        let t0 = SimTime::from_secs(1.0);
        d.request_speed(t0, SpinTarget::Level(SpeedLevel(0)));
        assert!(d.is_transitioning());
        let _ = drain(&mut d, SimTime::from_secs(100.0));
        assert_eq!(d.current_level(), Some(SpeedLevel(0)));
        assert_eq!(d.stats().transitions, 1);
    }

    #[test]
    fn speed_change_latched_during_service() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 3_000_000, t0));
        d.request_speed(t0, SpinTarget::Level(SpeedLevel(2)));
        // Still serving at the old level; the change is pending.
        assert!(d.is_busy());
        assert_eq!(d.current_level(), Some(SpeedLevel(5)));
        let done = drain(&mut d, SimTime::from_secs(100.0));
        assert_eq!(done.len(), 1);
        assert_eq!(d.current_level(), Some(SpeedLevel(2)));
    }

    #[test]
    fn queued_requests_wait_through_ramp() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.request_speed(t0, SpinTarget::Level(SpeedLevel(0)));
        assert!(d.is_transitioning());
        let t1 = SimTime::from_secs(0.5);
        d.submit(t1, fg_read(9, 0, t1));
        let done = drain(&mut d, SimTime::from_secs(100.0));
        assert_eq!(done.len(), 1);
        // The request could not start before the ramp completed (~8s for
        // 15000→3600 at the configured decel rate).
        assert!(
            done[0].queue_delay_s > 5.0,
            "queue delay {} too short",
            done[0].queue_delay_s
        );
        assert_eq!(d.current_level(), Some(SpeedLevel(0)));
    }

    #[test]
    fn standby_and_demand_spinup() {
        let mut d = mk_disk();
        let t0 = SimTime::from_secs(1.0);
        d.request_speed(t0, SpinTarget::Standby);
        let _ = drain(&mut d, SimTime::from_secs(100.0));
        assert!(d.is_standby());

        let t1 = SimTime::from_secs(200.0);
        d.submit(t1, fg_read(1, 0, t1));
        assert!(d.is_transitioning(), "demand must trigger spin-up");
        let done = drain(&mut d, SimTime::from_secs(300.0));
        assert_eq!(done.len(), 1);
        // Spin-up from standby to 15000 RPM takes 10.9s; the request paid it.
        assert!(done[0].queue_delay_s > 10.0);
        assert_eq!(d.current_level(), Some(SpeedLevel(5)));
    }

    #[test]
    fn no_auto_spinup_waits_for_policy() {
        let mut d = mk_disk();
        d.set_auto_spinup(false);
        let t0 = SimTime::from_secs(1.0);
        d.request_speed(t0, SpinTarget::Standby);
        let _ = drain(&mut d, SimTime::from_secs(100.0));
        assert!(d.is_standby());
        let t1 = SimTime::from_secs(200.0);
        d.submit(t1, fg_read(1, 0, t1));
        assert!(d.is_standby(), "must stay asleep without auto spin-up");
        assert_eq!(d.next_event_time(), None);
        // Policy wakes it explicitly.
        d.request_speed(t1, SpinTarget::Level(SpeedLevel(5)));
        let done = drain(&mut d, SimTime::from_secs(300.0));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn spindown_interrupted_by_demand_bounces_back() {
        let mut d = mk_disk();
        let t0 = SimTime::from_secs(1.0);
        d.request_speed(t0, SpinTarget::Standby);
        assert!(d.is_transitioning());
        let t1 = SimTime::from_secs(2.0); // mid-ramp
        d.submit(t1, fg_read(5, 0, t1));
        let done = drain(&mut d, SimTime::from_secs(300.0));
        assert_eq!(done.len(), 1);
        assert_eq!(
            d.current_level(),
            Some(SpeedLevel(5)),
            "disk should return to its previous level"
        );
        // Paid the full down-ramp plus the full up-ramp.
        assert!(done[0].queue_delay_s > 15.0);
    }

    #[test]
    fn idle_duration_tracks_quiescence() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        assert_eq!(d.idle_duration(SimTime::from_secs(5.0)), Some(5.0));
        d.submit(t0, fg_read(0, 0, t0));
        assert_eq!(d.idle_duration(t0), None);
        let done = drain(&mut d, SimTime::from_secs(10.0));
        let fin = done[0].finish_time;
        let later = fin + SimDuration::from_secs(3.0);
        let idle = d.idle_duration(later).unwrap();
        assert!((idle - 3.0).abs() < 1e-9);
    }

    #[test]
    fn energy_idle_spinning_matches_analytic() {
        let mut d = mk_disk();
        let e = d.energy(SimTime::from_secs(100.0));
        let expected = PowerModel::new(&spec()).idle_w(SpeedLevel(5)) * 100.0;
        assert!((e.total_joules() - expected).abs() < 1e-6);
        assert_eq!(e.joules(EnergyComponent::IdleSpin), e.total_joules());
    }

    #[test]
    fn energy_standby_cheaper_than_spinning() {
        let horizon = SimTime::from_secs(1000.0);
        let mut spin = mk_disk();
        let e_spin = spin.energy(horizon).total_joules();

        let mut sleep = mk_disk();
        sleep.request_speed(SimTime::ZERO, SpinTarget::Standby);
        let _ = drain(&mut sleep, horizon);
        let e_sleep = sleep.energy(horizon).total_joules();
        assert!(
            e_sleep < e_spin * 0.5,
            "standby {e_sleep} J vs spinning {e_spin} J"
        );
        // And the ledger shows both the transition and the standby hold.
        let led = sleep.energy(horizon);
        assert!(led.joules(EnergyComponent::Transition) > 0.0);
        assert!(led.joules(EnergyComponent::Standby) > 0.0);
    }

    #[test]
    fn energy_low_speed_cheaper_than_full() {
        let horizon = SimTime::from_secs(2000.0);
        let run = |level: usize| {
            let mut d = Disk::new(0, &spec(), 3, SpeedLevel(level));
            d.energy(horizon).total_joules()
        };
        let full = run(5);
        let slow = run(0);
        assert!(slow < full * 0.45, "slow {slow} vs full {full}");
    }

    #[test]
    fn service_energy_attributed_to_seek_and_transfer() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 5_000_000, t0));
        let _ = drain(&mut d, SimTime::from_secs(1.0));
        let e = d.energy(SimTime::from_secs(1.0));
        assert!(e.joules(EnergyComponent::Seek) > 0.0);
        assert!(e.joules(EnergyComponent::Transfer) > 0.0);
        assert!(e.joules(EnergyComponent::Migration) == 0.0);
    }

    #[test]
    fn migration_energy_attributed_to_migration() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(
            t0,
            DiskRequest {
                id: 1,
                sector: 5_000_000,
                sectors: 128,
                kind: IoKind::Read,
                class: RequestClass::Migration,
                issue_time: t0,
            },
        );
        let _ = drain(&mut d, SimTime::from_secs(1.0));
        let e = d.energy(SimTime::from_secs(1.0));
        assert!(e.joules(EnergyComponent::Migration) > 0.0);
        assert_eq!(e.joules(EnergyComponent::Seek), 0.0);
        assert_eq!(e.joules(EnergyComponent::Transfer), 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut d = mk_disk();
            let t0 = SimTime::ZERO;
            for i in 0..50 {
                d.submit(t0, fg_read(i, (i * 37) % 40_000_000, t0));
            }
            let done = drain(&mut d, SimTime::from_secs(100.0));
            done.iter().map(|c| c.finish_time.as_secs()).sum::<f64>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_depth_stat_returns_to_zero() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 0, t0));
        d.submit(t0, fg_read(1, 100, t0));
        let _ = drain(&mut d, SimTime::from_secs(10.0));
        assert_eq!(d.stats().queue_depth.current(), 0.0);
        assert!(d.stats().queue_depth.max_seen() >= 2.0);
    }

    #[test]
    fn latched_standby_never_strands_queued_requests() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 0, t0));
        d.submit(t0, fg_read(1, 1_000_000, t0));
        // Standby latched while the head is busy and another request waits.
        d.request_speed(t0, SpinTarget::Standby);
        let done = drain(&mut d, SimTime::from_secs(60.0));
        assert_eq!(done.len(), 2, "queued request must not be stranded");
        assert!(
            !d.is_standby(),
            "standby must be cancelled when the queue was non-empty"
        );
    }

    #[test]
    fn latched_standby_applies_once_queue_is_empty() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 0, t0));
        d.request_speed(t0, SpinTarget::Standby);
        // Single request: at its completion the queue is empty, so the
        // latched standby proceeds.
        let done = drain(&mut d, SimTime::from_secs(60.0));
        assert_eq!(done.len(), 1);
        assert!(d.is_standby());
    }

    #[test]
    fn request_speed_to_current_level_is_noop() {
        let mut d = mk_disk();
        d.request_speed(SimTime::from_secs(1.0), SpinTarget::Level(SpeedLevel(5)));
        assert!(!d.is_transitioning());
        assert_eq!(d.stats().transitions, 0);
    }

    #[test]
    fn failure_drains_queue_and_stops_power() {
        let mut d = mk_disk();
        let t0 = SimTime::ZERO;
        d.submit(t0, fg_read(0, 0, t0));
        d.submit(t0, fg_read(1, 1_000_000, t0));
        d.submit(t0, fg_read(2, 2_000_000, t0));
        let t1 = SimTime::from_secs(0.001);
        let dropped = d.fail(t1);
        assert_eq!(dropped.len(), 3, "in-service + two queued");
        assert!(d.has_failed());
        assert_eq!(d.next_event_time(), None);
        assert_eq!(d.stats().queue_depth.current(), 0.0);
        // No power after death.
        let e1 = d.energy(t1).total_joules();
        let e2 = d.energy(SimTime::from_secs(1000.0)).total_joules();
        assert_eq!(e1, e2, "dead disk must draw nothing");
        // Later traffic and speed requests are ignored.
        let t2 = SimTime::from_secs(2.0);
        d.submit(t2, fg_read(3, 0, t2));
        d.request_speed(t2, SpinTarget::Level(SpeedLevel(0)));
        assert_eq!(d.next_event_time(), None);
        // Ledger recorded the failure instant, once.
        let led = d.reliability(SimTime::from_secs(2000.0));
        assert!(led.failed);
        assert_eq!(led.failed_at_s, Some(0.001));
    }

    #[test]
    fn slow_transition_window_stretches_ramp() {
        let ramp_secs = |d: &mut Disk| {
            d.request_speed(SimTime::from_secs(1.0), SpinTarget::Level(SpeedLevel(0)));
            let done_at = d.next_event_time().unwrap();
            (done_at - SimTime::from_secs(1.0)).as_secs()
        };
        let mut normal = mk_disk();
        let nominal = ramp_secs(&mut normal);
        let mut sticky = mk_disk();
        sticky.set_slow_transitions(3.0, SimTime::from_secs(100.0));
        let slow = ramp_secs(&mut sticky);
        assert!((slow - 3.0 * nominal).abs() < 1e-9, "{slow} vs 3×{nominal}");
        assert_eq!(sticky.stats().slow_transitions, 1);
        // Outside the window the ramp is nominal again.
        let mut expired = mk_disk();
        expired.set_slow_transitions(3.0, SimTime::from_secs(0.5));
        assert!((ramp_secs(&mut expired) - nominal).abs() < 1e-9);
        assert_eq!(expired.stats().slow_transitions, 0);
        // Energy scales with the stretch: same power over 3× the time.
        let _ = drain(&mut sticky, SimTime::from_secs(100.0));
        let _ = drain(&mut normal, SimTime::from_secs(100.0));
        let at = SimTime::from_secs(100.0);
        let j_slow = sticky.energy(at).joules(EnergyComponent::Transition);
        let j_norm = normal.energy(at).joules(EnergyComponent::Transition);
        assert!(
            (j_slow - 3.0 * j_norm).abs() < 1e-6,
            "{j_slow} vs 3×{j_norm}"
        );
    }

    #[test]
    fn ledger_accrues_duty_cycle_and_transitions() {
        let mut d = mk_disk();
        // One hour spinning, then standby for an hour.
        let t1 = SimTime::from_secs(3600.0);
        d.request_speed(t1, SpinTarget::Standby);
        let _ = drain(&mut d, SimTime::from_secs(3700.0));
        let led = d.reliability(SimTime::from_secs(7200.0));
        assert_eq!(led.transitions, 1);
        assert!(led.active_hours >= 1.0, "{}", led.active_hours);
        assert!(led.standby_hours > 0.9, "{}", led.standby_hours);
        assert!(!led.failed);
        assert!(led.wear() > 0.0);
    }
}
