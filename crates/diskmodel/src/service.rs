//! Service-time computation.
//!
//! Given the head's current cylinder, the target location, the spindle
//! speed, and a rotational-latency sample, [`ServiceModel`] breaks a request
//! into its three phases:
//!
//! 1. **seek** — arm movement, independent of RPM (plus write settle),
//! 2. **rotation** — waiting for the first sector to pass under the head,
//!    inversely proportional to RPM,
//! 3. **transfer** — reading/writing `n` sectors as the platter turns,
//!    also inversely proportional to RPM (media-limited).
//!
//! Rotational latency is sampled uniformly in one revolution by the caller
//! (via the disk's deterministic RNG) — tracking exact angular position
//! through speed changes buys almost no fidelity at this simulation
//! granularity and costs a great deal of complexity.

use crate::geometry::Geometry;
use crate::request::{DiskRequest, IoKind};
use crate::seek::SeekModel;
use crate::spec::{DiskSpec, SpeedLevel};

/// The phase breakdown of one request's service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServicePhases {
    /// Arm-movement time (s); 0 when the head is already on-cylinder.
    pub seek_s: f64,
    /// Rotational positioning time (s).
    pub rotation_s: f64,
    /// Media transfer time (s).
    pub transfer_s: f64,
    /// Cylinder where the head ends up.
    pub end_cylinder: u32,
}

impl ServicePhases {
    /// Total service time.
    pub fn total_s(&self) -> f64 {
        self.seek_s + self.rotation_s + self.transfer_s
    }
}

/// Computes service phases for requests against one disk spec.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    geometry: Geometry,
    seek: SeekModel,
    /// Seconds per revolution per level.
    rev_time: Vec<f64>,
}

impl ServiceModel {
    /// Builds the model for `spec`.
    pub fn new(spec: &DiskSpec) -> Self {
        ServiceModel {
            geometry: Geometry::new(spec),
            seek: SeekModel::new(spec),
            rev_time: spec.levels().map(|l| spec.revolution_time(l)).collect(),
        }
    }

    /// The disk geometry (shared with callers that need capacity checks).
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The fitted seek model.
    pub fn seek_model(&self) -> &SeekModel {
        &self.seek
    }

    /// Computes the phases for `req`, with the head currently on
    /// `head_cylinder` and the spindle at `level`. `rot_frac` ∈ [0, 1) is the
    /// caller-supplied rotational-latency sample (fraction of a revolution).
    ///
    /// # Panics
    /// Panics if the request extends past the end of the disk, if
    /// `rot_frac` is outside `[0, 1)`, or if `sectors == 0`.
    pub fn service(
        &self,
        req: &DiskRequest,
        head_cylinder: u32,
        level: SpeedLevel,
        rot_frac: f64,
    ) -> ServicePhases {
        assert!((0.0..1.0).contains(&rot_frac), "bad rot_frac {rot_frac}");
        assert!(req.sectors >= 1, "empty request");
        let start = self.geometry.locate(req.sector);
        let last = self
            .geometry
            .locate(req.sector + u64::from(req.sectors) - 1);

        let distance = start.cylinder.abs_diff(head_cylinder);
        let seek_s = match req.kind {
            IoKind::Read => self.seek.seek_time(distance),
            IoKind::Write => self.seek.seek_time_write(distance),
        };

        let rev = self.rev_time[level.index()];
        let rotation_s = rot_frac * rev;

        // Transfer at the media rate of each track the request touches.
        // Approximation: use the starting track's density for the whole
        // request (requests are small relative to track capacity), plus one
        // head/track switch charge per track boundary crossed.
        let per_sector = rev / f64::from(start.sectors_per_track);
        let mut transfer_s = per_sector * f64::from(req.sectors);
        let crossings = self.track_crossings(req, &start);
        // A track or cylinder switch costs roughly the track-to-track seek.
        transfer_s += f64::from(crossings) * self.seek.seek_time(1);

        ServicePhases {
            seek_s,
            rotation_s,
            transfer_s,
            end_cylinder: last.cylinder,
        }
    }

    fn track_crossings(&self, req: &DiskRequest, start: &crate::geometry::Location) -> u32 {
        let first_track_remaining = u64::from(start.sectors_per_track - start.sector);
        if u64::from(req.sectors) <= first_track_remaining {
            0
        } else {
            // Remaining sectors spill onto subsequent tracks of ~equal size.
            let spill = u64::from(req.sectors) - first_track_remaining;
            1 + (spill.saturating_sub(1) / u64::from(start.sectors_per_track)) as u32
        }
    }

    /// Expected service time for a uniformly random small request at
    /// `level` — the analytic figure queueing models seed themselves with
    /// before real measurements accumulate: average seek + half a
    /// revolution + `sectors` of transfer at the mean track density.
    pub fn expected_random_service_s(&self, level: SpeedLevel, sectors: u32) -> f64 {
        let rev = self.rev_time[level.index()];
        let avg_seek = self.seek.average_seek_time();
        let mean_spt = {
            // Weight zone densities by their sector counts via total capacity.
            // A simple midpoint estimate is plenty here.
            let first = self.geometry.locate(0).sectors_per_track;
            let last = self
                .geometry
                .locate(self.geometry.total_sectors() - 1)
                .sectors_per_track;
            f64::from(first + last) / 2.0
        };
        avg_seek + rev / 2.0 + rev / mean_spt * f64::from(sectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestClass;
    use simkit::SimTime;

    fn model() -> ServiceModel {
        ServiceModel::new(&DiskSpec::ultrastar_multispeed(6))
    }

    fn req(sector: u64, sectors: u32, kind: IoKind) -> DiskRequest {
        DiskRequest {
            id: 0,
            sector,
            sectors,
            kind,
            class: RequestClass::Foreground,
            issue_time: SimTime::ZERO,
        }
    }

    #[test]
    fn same_cylinder_skips_seek() {
        let m = model();
        let p = m.service(&req(0, 8, IoKind::Read), 0, SpeedLevel(5), 0.5);
        assert_eq!(p.seek_s, 0.0);
        assert!(p.rotation_s > 0.0);
        assert!(p.transfer_s > 0.0);
    }

    #[test]
    fn slower_spindle_longer_rotation_and_transfer() {
        let m = model();
        let fast = m.service(&req(0, 64, IoKind::Read), 9000, SpeedLevel(5), 0.5);
        let slow = m.service(&req(0, 64, IoKind::Read), 9000, SpeedLevel(0), 0.5);
        assert_eq!(fast.seek_s, slow.seek_s, "seek is RPM-independent");
        let ratio = 15000.0 / 3600.0;
        assert!((slow.rotation_s / fast.rotation_s - ratio).abs() < 1e-9);
        assert!(slow.transfer_s > fast.transfer_s);
    }

    #[test]
    fn writes_slower_than_reads_when_seeking() {
        let m = model();
        let r = m.service(&req(0, 8, IoKind::Read), 9000, SpeedLevel(5), 0.3);
        let w = m.service(&req(0, 8, IoKind::Write), 9000, SpeedLevel(5), 0.3);
        assert!(w.seek_s > r.seek_s);
        assert_eq!(w.rotation_s, r.rotation_s);
    }

    #[test]
    fn zero_rot_frac_means_no_rotational_wait() {
        let m = model();
        let p = m.service(&req(0, 8, IoKind::Read), 0, SpeedLevel(5), 0.0);
        assert_eq!(p.rotation_s, 0.0);
    }

    #[test]
    fn end_cylinder_tracks_request_end() {
        let m = model();
        let spec = DiskSpec::ultrastar_multispeed(6);
        // A request spanning a full cylinder of sectors ends on the next one.
        let per_cyl = u64::from(spec.sectors_outer) * u64::from(spec.surfaces);
        let p = m.service(
            &req(0, per_cyl as u32 + 1, IoKind::Read),
            0,
            SpeedLevel(5),
            0.0,
        );
        assert_eq!(p.end_cylinder, 1);
    }

    #[test]
    fn big_requests_pay_track_crossings() {
        let m = model();
        let small = m.service(&req(0, 8, IoKind::Read), 0, SpeedLevel(5), 0.0);
        let big = m.service(&req(0, 2048, IoKind::Read), 0, SpeedLevel(5), 0.0);
        // 2048 sectors crosses ≥ 2 track boundaries at 700 spt.
        assert!(big.transfer_s > small.transfer_s * 100.0);
    }

    #[test]
    fn expected_service_reasonable() {
        let m = model();
        // 8 KiB (16 sectors) random read at full speed: ~seek 3-4ms + 2ms
        // half-rev + small transfer => 5-7 ms.
        let s = m.expected_random_service_s(SpeedLevel(5), 16);
        assert!((4e-3..9e-3).contains(&s), "expected service {s}");
        // At the lowest speed, rotation dominates: noticeably slower.
        let slow = m.expected_random_service_s(SpeedLevel(0), 16);
        assert!(slow > s * 1.5);
    }

    #[test]
    fn phases_always_nonnegative() {
        let m = model();
        let cap = m.geometry().total_sectors();
        let mut rng = simkit::DetRng::new(0x5E2C, "service-phases");
        for _ in 0..2_000 {
            let sectors = 1 + rng.below(511) as u32;
            let head = rng.below(18_000) as u32;
            let level = rng.below(6) as usize;
            let rot = rng.uniform(0.0, 0.999);
            let sector = rng.below(cap).min(cap - u64::from(sectors) - 1);
            let kind = if rng.chance(0.5) {
                IoKind::Write
            } else {
                IoKind::Read
            };
            let p = m.service(&req(sector, sectors, kind), head, SpeedLevel(level), rot);
            assert!(p.seek_s >= 0.0);
            assert!(p.rotation_s >= 0.0);
            assert!(p.transfer_s > 0.0);
            assert!(
                p.total_s() < 1.0,
                "implausibly long service {}",
                p.total_s()
            );
        }
    }
}
