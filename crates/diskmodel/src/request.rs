//! Disk-level request types.
//!
//! A [`DiskRequest`] is addressed in *physical disk sectors* — the array
//! layer has already translated logical volume addresses through its remap
//! table by the time a request reaches a disk. Requests carry a
//! [`RequestClass`] so the energy ledger can attribute background migration
//! traffic separately from foreground work.

use simkit::SimTime;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data flows disk → host.
    Read,
    /// Data flows host → disk (pays the write-settle penalty).
    Write,
}

/// Foreground vs policy-generated background traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Application I/O; always serviced first.
    Foreground,
    /// Data-migration I/O issued by a power policy; serviced only when no
    /// foreground request is waiting, and billed to the `Migration` energy
    /// component.
    Migration,
}

/// A single request addressed to one disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskRequest {
    /// Unique id assigned by the issuer (the array layer).
    pub id: u64,
    /// First physical sector on this disk.
    pub sector: u64,
    /// Number of sectors to transfer (must be ≥ 1).
    pub sectors: u32,
    /// Read or write.
    pub kind: IoKind,
    /// Foreground or migration.
    pub class: RequestClass,
    /// When the request was issued to the disk (queueing delay reference).
    pub issue_time: SimTime,
}

/// A finished request, as reported back by the disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request that finished.
    pub request: DiskRequest,
    /// The disk that served it.
    pub disk: usize,
    /// When service finished.
    pub finish_time: SimTime,
    /// Time spent waiting in the disk queue (and in transitions) before
    /// service began.
    pub queue_delay_s: f64,
    /// Time the head spent on this request (seek + rotate + transfer).
    pub service_s: f64,
}

impl Completion {
    /// Total response time: queueing plus service.
    pub fn response_s(&self) -> f64 {
        self.queue_delay_s + self.service_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_queue_plus_service() {
        let c = Completion {
            disk: 0,
            request: DiskRequest {
                id: 1,
                sector: 0,
                sectors: 8,
                kind: IoKind::Read,
                class: RequestClass::Foreground,
                issue_time: SimTime::ZERO,
            },
            finish_time: SimTime::from_secs(0.010),
            queue_delay_s: 0.004,
            service_s: 0.006,
        };
        assert!((c.response_s() - 0.010).abs() < 1e-12);
    }
}
