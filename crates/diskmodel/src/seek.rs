//! Seek-time model.
//!
//! Disk arm seeks follow the classic two-phase curve: short seeks are
//! dominated by acceleration (time ∝ √distance), long seeks by the coast
//! phase (time linear in distance). [`SeekModel`] fits the standard
//! piecewise form
//!
//! ```text
//! t(d) = a + b·√d            for 1 ≤ d ≤ knee
//! t(d) = c + e·d             for d > knee
//! ```
//!
//! to three anchor points of a [`DiskSpec`]: the track-to-track time at
//! d = 1, continuity of value and slope at the knee, and the full-stroke
//! time at d = C−1. A seek of distance 0 costs nothing (the head is already
//! there); rotational settle is part of the rotational-latency model, not
//! the seek.

use crate::spec::DiskSpec;

/// Fitted piecewise seek-time curve.
#[derive(Debug, Clone)]
pub struct SeekModel {
    a: f64,
    b: f64,
    c: f64,
    e: f64,
    knee: f64,
    max_cyl: f64,
    write_settle_s: f64,
}

impl SeekModel {
    /// Fits the curve to `spec`.
    pub fn new(spec: &DiskSpec) -> Self {
        let d_max = f64::from(spec.cylinders - 1).max(1.0);
        let knee = (d_max * spec.seek_knee_fraction).max(1.0);
        let t1 = spec.seek_track_to_track_s;
        let t_full = spec.seek_full_stroke_s;

        // Solve for (a, b, c, e) with:
        //   a + b·√1 = t1
        //   c + e·d_max = t_full
        //   value continuity at knee:  a + b·√knee = c + e·knee
        //   slope continuity at knee:  b / (2√knee) = e
        // Substitute e and c, reduce to one equation in b:
        //   t1 - b + b·√knee = t_full - e·d_max + e·knee, e = b/(2√knee)
        //   t1 - b + b·√knee = t_full - (b/(2√knee))(d_max - knee)
        // => b [ √knee - 1 + (d_max - knee)/(2√knee) ] = t_full - t1
        let sk = knee.sqrt();
        let denom = sk - 1.0 + (d_max - knee) / (2.0 * sk);
        let b = if denom.abs() < 1e-12 {
            0.0
        } else {
            (t_full - t1) / denom
        };
        let a = t1 - b;
        let e = b / (2.0 * sk);
        let c = a + b * sk - e * knee;

        SeekModel {
            a,
            b,
            c,
            e,
            knee,
            max_cyl: d_max,
            write_settle_s: spec.write_settle_s,
        }
    }

    /// Seek time for a move of `distance` cylinders (0 = no seek).
    pub fn seek_time(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let d = f64::from(distance).min(self.max_cyl);
        let t = if d <= self.knee {
            self.a + self.b * d.sqrt()
        } else {
            self.c + self.e * d
        };
        t.max(0.0)
    }

    /// Seek time for a write, which pays an extra head-settle penalty
    /// whenever the arm actually moved.
    pub fn seek_time_write(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        self.seek_time(distance) + self.write_settle_s
    }

    /// The average seek time over a uniformly random pair of cylinders
    /// (≈ distance C/3), computed by numeric averaging. Used by queueing
    /// models and reported in the spec table.
    pub fn average_seek_time(&self) -> f64 {
        // E[t(d)] where d = |X - Y| for X,Y uniform on [0, C]:
        // density of d is 2(C-d)/C². Integrate numerically over 4096 steps.
        let n = 4096;
        let c = self.max_cyl;
        let mut acc = 0.0;
        for i in 0..n {
            let d = (i as f64 + 0.5) / n as f64 * c;
            let w = 2.0 * (c - d) / (c * c);
            let dist = d.round().max(0.0) as u32;
            acc += self.seek_time(dist) * w * (c / n as f64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DiskSpec;

    fn model() -> SeekModel {
        SeekModel::new(&DiskSpec::ultrastar_multispeed(6))
    }

    #[test]
    fn anchor_points_match_spec() {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let m = SeekModel::new(&spec);
        assert!((m.seek_time(1) - spec.seek_track_to_track_s).abs() < 1e-9);
        assert!((m.seek_time(spec.cylinders - 1) - spec.seek_full_stroke_s).abs() < 1e-6);
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(model().seek_time(0), 0.0);
        assert_eq!(model().seek_time_write(0), 0.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = model();
        let mut prev = 0.0;
        for d in 1..18_000 {
            let t = m.seek_time(d);
            assert!(
                t >= prev - 1e-12,
                "seek time decreased at d={d}: {t} < {prev}"
            );
            prev = t;
        }
    }

    #[test]
    fn continuous_at_knee() {
        let m = model();
        let k = m.knee as u32;
        let before = m.seek_time(k);
        let after = m.seek_time(k + 1);
        assert!(
            (after - before) < 0.1e-3,
            "jump at knee: {before} -> {after}"
        );
    }

    #[test]
    fn average_seek_is_plausible() {
        // The 36Z15 datasheet says ~3.4ms average read seek; our fitted curve
        // should land in the right neighbourhood.
        let avg = model().average_seek_time();
        assert!(
            (2.0e-3..5.0e-3).contains(&avg),
            "average seek {avg} out of range"
        );
    }

    #[test]
    fn writes_cost_more_when_moving() {
        let m = model();
        assert!(m.seek_time_write(100) > m.seek_time(100));
        let spec = DiskSpec::ultrastar_multispeed(6);
        assert!((m.seek_time_write(100) - m.seek_time(100) - spec.write_settle_s).abs() < 1e-12);
    }

    #[test]
    fn clamps_beyond_full_stroke() {
        let m = model();
        assert_eq!(m.seek_time(1_000_000), m.seek_time(17_999));
    }

    #[test]
    fn seek_time_bounded() {
        let m = model();
        let mut rng = simkit::DetRng::new(0x5EEC, "seek-bound");
        for _ in 0..2_000 {
            let d = rng.below(18_000) as u32;
            let t = m.seek_time(d);
            assert!(t >= 0.0);
            assert!(t <= 6.6e-3, "d={d} t={t}");
        }
    }

    #[test]
    fn triangle_like_subadditivity() {
        // Two short seeks never beat one combined seek by more than the
        // startup constant — i.e. the curve is concave-ish; sanity, not
        // exact math.
        let m = model();
        let mut rng = simkit::DetRng::new(0x5EEC, "seek-triangle");
        for _ in 0..2_000 {
            let d1 = 1 + rng.below(8_999) as u32;
            let d2 = 1 + rng.below(8_999) as u32;
            let combined = m.seek_time(d1 + d2);
            let split = m.seek_time(d1) + m.seek_time(d2);
            assert!(combined <= split + 1e-9, "d1={d1} d2={d2}");
        }
    }
}
