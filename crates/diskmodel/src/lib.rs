//! # diskmodel — a multi-speed disk simulator
//!
//! Models the hypothetical multi-speed disks that Hibernator (SOSP 2005) and
//! DRPM (ISCA 2003) are built around: conventional drives extended with
//! several rotational-speed levels, where lower speeds serve requests more
//! slowly but draw dramatically less spindle power (drag ∝ RPM^2.8).
//!
//! The crate layers as:
//!
//! * [`DiskSpec`] — every physical parameter in one serialisable struct,
//!   with the Ultrastar-36Z15-derived preset used throughout the suite;
//! * [`Geometry`] — zoned logical-sector → (cylinder, surface, sector)
//!   mapping;
//! * [`SeekModel`] — the fitted `a + b·√d` / linear two-phase seek curve;
//! * [`ServiceModel`] — per-request seek/rotation/transfer phase breakdown;
//! * [`PowerModel`] — per-level wattages, ramp costs, break-even times;
//! * [`Disk`] — the event-driven disk: dual FIFO queues (foreground over
//!   migration), latched speed changes, on-demand spin-up, and exact
//!   per-component energy attribution into an [`simkit::EnergyLedger`].
//!
//! No multi-speed drive ever shipped commercially; the parameters here
//! follow the published single-speed datasheet extended by the power law —
//! the same methodology the original papers used (see DESIGN.md).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod disk;
mod geometry;
mod power;
mod request;
mod seek;
mod service;
mod spec;

pub use disk::{Disk, DiskStats, SpinTarget, TransitionCause, TransitionRecord};
pub use geometry::{Geometry, Location};
pub use power::{PowerModel, Transition};
pub use request::{Completion, DiskRequest, IoKind, RequestClass};
pub use seek::SeekModel;
pub use service::{ServiceModel, ServicePhases};
pub use spec::{DiskSpec, SpeedLevel};
