//! Response-time prediction.
//!
//! Hibernator's speed allocator needs to answer, *before* committing an
//! epoch's layout: "if `n` disks spin at level `k` and absorb arrival rate
//! `λ`, what will the mean response time be?". Each disk is modelled as an
//! M/G/1 queue — Poisson arrivals (a good fit for OLTP front-ends), general
//! service times — whose mean response is the Pollaczek–Khinchine formula:
//!
//! ```text
//! R = E[S] + λ·E[S²] / (2·(1 − ρ)),   ρ = λ·E[S]
//! ```
//!
//! The two service moments per speed level come from the
//! [`ServiceEstimator`]: seeded analytically from the disk's service model
//! and replaced by live measurements once enough completions accumulate —
//! so the predictor tracks the *actual* workload (request sizes, locality)
//! rather than datasheet assumptions.

use diskmodel::{ServiceModel, SpeedLevel};
use simkit::Moments;

/// Offered load (ρ = λ·E[S]) at or above which a server is treated as
/// saturated. The closed form diverges as ρ → 1, and loads this close to
/// 1 predict response times far beyond any goal, so the allocator treats
/// them as infeasible outright rather than comparing astronomical finite
/// values.
pub const RHO_SATURATION: f64 = 0.999;

/// Mean M/G/1 response time (seconds) for one server.
///
/// Returns `f64::INFINITY` when the server is effectively saturated
/// (ρ ≥ [`RHO_SATURATION`]): callers treat that as "assignment
/// infeasible".
///
/// # Panics
/// Panics if any argument is negative or non-finite.
pub fn mg1_response(lambda: f64, es: f64, es2: f64) -> f64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "bad arrival rate {lambda}"
    );
    assert!(es > 0.0 && es.is_finite(), "bad E[S] {es}");
    assert!(es2 > 0.0 && es2.is_finite(), "bad E[S²] {es2}");
    let rho = lambda * es;
    if rho >= RHO_SATURATION {
        return f64::INFINITY;
    }
    es + lambda * es2 / (2.0 * (1.0 - rho))
}

/// Per-level service-time moment estimates.
#[derive(Debug, Clone)]
pub struct ServiceEstimator {
    measured: Vec<Moments>,
    analytic: Vec<(f64, f64)>,
    /// Switch from analytic to measured after this many samples.
    min_samples: u64,
}

impl ServiceEstimator {
    /// Builds the estimator for `levels` speed levels, seeding each level's
    /// moments from `model` assuming random requests of `seed_sectors`.
    ///
    /// The analytic seed for `E[S²]` uses `1.5·E[S]²` — i.e. a squared
    /// coefficient of variation of 0.5, typical for random disk service
    /// (deterministic-ish transfer plus variable seek+rotation).
    pub fn new(model: &ServiceModel, levels: usize, seed_sectors: u32) -> ServiceEstimator {
        let analytic = (0..levels)
            .map(|l| {
                let es = model.expected_random_service_s(SpeedLevel(l), seed_sectors);
                (es, 1.5 * es * es)
            })
            .collect();
        ServiceEstimator {
            measured: vec![Moments::new(); levels],
            analytic,
            min_samples: 50,
        }
    }

    /// Number of levels covered.
    pub fn levels(&self) -> usize {
        self.measured.len()
    }

    /// Records a measured service time at `level`.
    ///
    /// # Panics
    /// Panics if the level is out of range or the sample non-positive.
    pub fn record(&mut self, level: SpeedLevel, service_s: f64) {
        assert!(service_s > 0.0, "service time must be positive");
        self.measured[level.index()].record(service_s);
    }

    /// `(E[S], E[S²])` for `level`: measured when enough samples exist,
    /// analytic otherwise.
    pub fn moments(&self, level: SpeedLevel) -> (f64, f64) {
        let m = &self.measured[level.index()];
        if m.count() >= self.min_samples {
            (m.mean(), m.raw_second_moment())
        } else {
            self.analytic[level.index()]
        }
    }

    /// Predicted mean response time of one disk at `level` absorbing
    /// `lambda` requests/second.
    pub fn response(&self, level: SpeedLevel, lambda: f64) -> f64 {
        let (es, es2) = self.moments(level);
        mg1_response(lambda, es, es2)
    }

    /// True once `level` reports measured (not analytic) moments.
    pub fn is_measured(&self, level: SpeedLevel) -> bool {
        self.measured[level.index()].count() >= self.min_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::DiskSpec;

    fn estimator() -> ServiceEstimator {
        let spec = DiskSpec::ultrastar_multispeed(6);
        ServiceEstimator::new(&ServiceModel::new(&spec), 6, 16)
    }

    #[test]
    fn zero_load_response_is_service_time() {
        let r = mg1_response(0.0, 0.005, 5e-5);
        assert_eq!(r, 0.005);
    }

    #[test]
    fn response_grows_with_load() {
        let es = 0.005;
        let es2 = 1.5 * es * es;
        let mut prev = 0.0;
        for i in 1..19 {
            let lambda = i as f64 * 10.0; // up to 180/s, ρ = 0.9
            let r = mg1_response(lambda, es, es2);
            assert!(r > prev, "not monotone at λ={lambda}");
            prev = r;
        }
    }

    #[test]
    fn saturation_threshold_matches_doc() {
        // ρ exactly at the named constant saturates; just below does not.
        let (es, es2) = (1.0, 1.5);
        assert!(mg1_response(RHO_SATURATION, es, es2).is_infinite());
        assert!(mg1_response(RHO_SATURATION - 1e-6, es, es2).is_finite());
    }

    #[test]
    fn saturation_is_infinite() {
        assert!(mg1_response(200.0, 0.005, 5e-5).is_infinite());
        assert!(mg1_response(1000.0, 0.005, 5e-5).is_infinite());
    }

    #[test]
    fn near_saturation_blows_up() {
        let es = 0.005;
        let es2 = 1.5 * es * es;
        let r90 = mg1_response(180.0, es, es2);
        let r50 = mg1_response(100.0, es, es2);
        assert!(r90 > 4.0 * r50, "queueing blow-up missing: {r50} vs {r90}");
    }

    #[test]
    fn analytic_seeds_ordered_by_speed() {
        let e = estimator();
        let mut prev = f64::INFINITY;
        for l in 0..6 {
            let (es, es2) = e.moments(SpeedLevel(l));
            assert!(es < prev, "faster level must serve faster");
            assert!(es2 > es * es, "E[S²] ≥ E[S]²");
            prev = es;
        }
    }

    #[test]
    fn measurements_override_analytic() {
        let mut e = estimator();
        let l = SpeedLevel(3);
        assert!(!e.is_measured(l));
        let (seed_es, _) = e.moments(l);
        for _ in 0..60 {
            e.record(l, 0.042);
        }
        assert!(e.is_measured(l));
        let (es, es2) = e.moments(l);
        assert!((es - 0.042).abs() < 1e-12);
        assert!((es2 - 0.042 * 0.042).abs() < 1e-9);
        assert_ne!(es, seed_es);
    }

    #[test]
    fn few_samples_keep_analytic() {
        let mut e = estimator();
        let l = SpeedLevel(0);
        let before = e.moments(l);
        for _ in 0..10 {
            e.record(l, 123.0); // absurd outliers must not leak through yet
        }
        assert_eq!(e.moments(l), before);
    }

    #[test]
    fn response_at_least_service() {
        let mut rng = simkit::DetRng::new(0xA71, "mg1-lambda");
        for _ in 0..1_000 {
            let lambda = rng.uniform(0.0, 150.0);
            let es = 0.005;
            let r = mg1_response(lambda, es, 1.5 * es * es);
            assert!(r >= es, "lambda {lambda}");
        }
    }
}
