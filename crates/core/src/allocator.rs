//! The coarse-grained speed allocator.
//!
//! Once per epoch Hibernator chooses *how many disks spin at each speed*.
//! The inputs are the temperature-sorted per-chunk arrival rates, the
//! per-level service moments, and the response-time goal; the output is a
//! disk count per level minimizing predicted power subject to the goal.
//!
//! # Model
//!
//! Capacity stays balanced: every disk holds `⌈C/N⌉` chunks. Tiers are
//! filled hottest-first — the fastest tier's disks take the hottest chunk
//! prefix, and so on down. For an assignment `(n_{K-1}, …, n_0)`:
//!
//! * tier load `λ_k` = summed rates of its chunk range, split evenly over
//!   its `n_k` disks;
//! * per-disk response `R_k` from the M/G/1 predictor;
//! * array response `R̄ = Σ λ_k·R_k / λ` (request-weighted);
//! * power `P = Σ n_k·(P_idle(k) + ρ_k·P_active_extra)`.
//!
//! # Search
//!
//! Exact dynamic programming over (level, disks assigned), with the
//! accumulated weighted-response budget discretised into buckets. The
//! discretisation is conservative (budgets round *up*), so a returned
//! assignment always satisfies the goal under the model. For small arrays
//! the exhaustive enumeration in the tests cross-checks optimality.

use crate::predictor::ServiceEstimator;
use diskmodel::{PowerModel, SpeedLevel};

/// Inputs that change every epoch.
#[derive(Debug, Clone)]
pub struct AllocationInput<'a> {
    /// Per-chunk arrival rates (req/s), sorted descending (hottest first).
    pub chunk_rates: &'a [f64],
    /// Number of disks to distribute.
    pub disks: usize,
    /// Mean response-time goal, seconds.
    pub goal_s: f64,
}

/// The allocator's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Disks per level (index = level, 0 = slowest).
    pub per_level: Vec<usize>,
    /// Predicted request-weighted mean response time (s); 0 when idle.
    pub predicted_response_s: f64,
    /// Predicted array power (W).
    pub predicted_power_w: f64,
    /// False when no assignment met the goal and the all-fast fallback was
    /// returned.
    pub feasible: bool,
}

impl Allocation {
    /// All disks at the fastest level (the fallback / Base layout).
    pub fn all_fast(disks: usize, levels: usize) -> Allocation {
        let mut per_level = vec![0; levels];
        per_level[levels - 1] = disks;
        Allocation {
            per_level,
            predicted_response_s: 0.0,
            predicted_power_w: 0.0,
            feasible: false,
        }
    }
}

/// The allocator: owns the per-level power figures, borrows fresh service
/// moments per call.
pub struct SpeedAllocator {
    idle_w: Vec<f64>,
    active_extra_w: f64,
    /// Response-budget discretisation buckets.
    buckets: usize,
}

impl SpeedAllocator {
    /// Builds the allocator from the disk power model.
    pub fn new(power: &PowerModel, levels: usize) -> SpeedAllocator {
        SpeedAllocator {
            idle_w: (0..levels).map(|l| power.idle_w(SpeedLevel(l))).collect(),
            // Seek and transfer extras are close; use their midpoint for the
            // load-dependent term.
            active_extra_w: 3.15,
            buckets: 160,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.idle_w.len()
    }

    /// Evaluates one concrete assignment. Returns `None` if infeasible
    /// (some tier saturated or goal exceeded).
    pub fn evaluate(
        &self,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        per_level: &[usize],
    ) -> Option<(f64, f64)> {
        self.evaluate_inner(input, est, per_level, true)
    }

    /// Evaluates ignoring the goal (used for the all-fast fallback, whose
    /// predictions still feed the model-calibration loop). Returns `None`
    /// only on saturation.
    pub fn evaluate_unconstrained(
        &self,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        per_level: &[usize],
    ) -> Option<(f64, f64)> {
        self.evaluate_inner(input, est, per_level, false)
    }

    fn evaluate_inner(
        &self,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        per_level: &[usize],
        enforce_goal: bool,
    ) -> Option<(f64, f64)> {
        assert_eq!(per_level.len(), self.levels(), "arity mismatch");
        assert_eq!(
            per_level.iter().sum::<usize>(),
            input.disks,
            "must assign every disk"
        );
        let cum = cumulative_rates(input.chunk_rates, input.disks);
        let total_rate: f64 = *cum.last().expect("cum non-empty");

        let mut used = 0usize;
        let mut weighted = 0.0;
        let mut power = 0.0;
        // Fastest level first consumes the hottest prefix.
        for level in (0..self.levels()).rev() {
            let n = per_level[level];
            if n == 0 {
                continue;
            }
            let lam_tier = cum[used + n] - cum[used];
            let lam_disk = lam_tier / n as f64;
            let r = est.response(SpeedLevel(level), lam_disk);
            if !r.is_finite() {
                return None;
            }
            weighted += lam_tier * r;
            let (es, _) = est.moments(SpeedLevel(level));
            let rho = (lam_disk * es).min(1.0);
            power += n as f64 * (self.idle_w[level] + rho * self.active_extra_w);
            used += n;
        }
        let mean_resp = if total_rate > 0.0 {
            weighted / total_rate
        } else {
            0.0
        };
        if enforce_goal && mean_resp > input.goal_s {
            return None;
        }
        Some((mean_resp, power))
    }

    /// Finds the minimum-power assignment meeting the goal. Falls back to
    /// all-fast (flagged `feasible: false`) if nothing meets it.
    #[allow(clippy::needless_range_loop)] // dp tables are indexed by design
    pub fn allocate(&self, input: &AllocationInput<'_>, est: &ServiceEstimator) -> Allocation {
        assert!(input.disks > 0, "no disks");
        assert!(input.goal_s > 0.0, "goal must be positive");
        let levels = self.levels();
        let n = input.disks;
        let cum = cumulative_rates(input.chunk_rates, n);
        let total_rate = *cum.last().expect("non-empty");
        let budget = input.goal_s * total_rate.max(1e-12);
        let b = self.buckets;

        // dp[disks_used][bucket] = min power, processed fastest level first.
        const INF: f64 = f64::INFINITY;
        let mut dp = vec![vec![INF; b + 1]; n + 1];
        let mut choice: Vec<Vec<Vec<(usize, usize, usize)>>> = Vec::new(); // per level: (from_used, from_bucket, n)
        dp[0][0] = 0.0;

        for level in (0..levels).rev() {
            let mut ndp = vec![vec![INF; b + 1]; n + 1];
            let mut nchoice = vec![vec![(usize::MAX, 0, 0); b + 1]; n + 1];
            let (es, _es2) = est.moments(SpeedLevel(level));
            for used in 0..=n {
                for bk in 0..=b {
                    let cur = dp[used][bk];
                    if !cur.is_finite() {
                        continue;
                    }
                    let max_take = n - used;
                    for take in 0..=max_take {
                        // Levels below this one must be able to absorb the
                        // rest; always possible (they can also take 0 only at
                        // the end). Enforce full assignment at the last level.
                        if level == 0 && take != max_take {
                            continue;
                        }
                        let (add_w, add_p) = if take == 0 {
                            (0.0, 0.0)
                        } else {
                            let lam_tier = cum[used + take] - cum[used];
                            let lam_disk = lam_tier / take as f64;
                            let r = est.response(SpeedLevel(level), lam_disk);
                            if !r.is_finite() {
                                continue;
                            }
                            let rho = (lam_disk * es).min(1.0);
                            (
                                lam_tier * r,
                                take as f64 * (self.idle_w[level] + rho * self.active_extra_w),
                            )
                        };
                        // Conservative: round the consumed budget up.
                        let spent = bk as f64 / b as f64 * budget + add_w;
                        if spent > budget * (1.0 + 1e-9) {
                            continue;
                        }
                        let nbk = ((spent / budget * b as f64).ceil() as usize).min(b);
                        let np = cur + add_p;
                        if np < ndp[used + take][nbk] {
                            ndp[used + take][nbk] = np;
                            nchoice[used + take][nbk] = (used, bk, take);
                        }
                    }
                }
            }
            dp = ndp;
            choice.push(nchoice);
        }

        // Best terminal state.
        let mut best: Option<(usize, f64)> = None; // (bucket, power)
        for bk in 0..=b {
            let p = dp[n][bk];
            if p.is_finite() && best.is_none_or(|(_, bp)| p < bp) {
                best = Some((bk, p));
            }
        }
        let Some((mut bk, power)) = best else {
            // No feasible assignment: fall back to all-fast, but carry its
            // *real* predicted response/power so the calibration loop keeps
            // comparing model to measurement.
            let mut fallback = Allocation::all_fast(n, levels);
            if let Some((resp, pw)) = self.evaluate_unconstrained(input, est, &fallback.per_level) {
                fallback.predicted_response_s = resp;
                fallback.predicted_power_w = pw;
            }
            return fallback;
        };

        // Reconstruct.
        let mut per_level = vec![0usize; levels];
        let mut used = n;
        for (i, level) in (0..levels).rev().enumerate().rev() {
            // `choice` was pushed fastest-level-first; index i corresponds to
            // the i-th processed level. Walk backwards.
            let (pu, pb, take) = choice[i][used][bk];
            debug_assert_ne!(pu, usize::MAX, "broken DP chain");
            per_level[level] = take;
            used = pu;
            bk = pb;
        }
        debug_assert_eq!(used, 0);

        let (resp, pw) = self
            .evaluate(input, est, &per_level)
            .expect("DP result must evaluate feasible");
        debug_assert!((pw - power).abs() < 1e-6);
        Allocation {
            per_level,
            predicted_response_s: resp,
            predicted_power_w: pw,
            feasible: true,
        }
    }

    /// Finds the minimum-response assignment whose predicted power fits
    /// under `cap_w` — the planning mode a fleet power grant imposes. The
    /// usual objective is inverted: power becomes the constraint and
    /// response the objective, so a capped array degrades latency no more
    /// than the budget forces. `feasible` reports whether the chosen plan
    /// also meets the response goal. When even the all-slowest layout
    /// exceeds the cap, that layout is returned flagged infeasible — the
    /// cap is soft, and the overdraw is the fleet accounting's problem.
    #[allow(clippy::needless_range_loop)] // dp tables are indexed by design
    pub fn allocate_capped(
        &self,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        cap_w: f64,
    ) -> Allocation {
        assert!(input.disks > 0, "no disks");
        let levels = self.levels();
        let n = input.disks;
        let cum = cumulative_rates(input.chunk_rates, n);
        let b = self.buckets;
        let cap = cap_w.max(0.0);
        if cap <= 0.0 {
            return self.min_power_layout(input, est);
        }

        const INF: f64 = f64::INFINITY;
        // dp over (disks used, power bucket): minimise the weighted
        // response sum, tie-broken toward lower exact power. Same
        // fastest-level-first tier filling as `allocate`.
        let mut dpw = vec![vec![INF; b + 1]; n + 1];
        let mut dpp = vec![vec![INF; b + 1]; n + 1];
        let mut choice: Vec<Vec<Vec<(usize, usize, usize)>>> = Vec::new();
        dpw[0][0] = 0.0;
        dpp[0][0] = 0.0;

        for level in (0..levels).rev() {
            let mut nw = vec![vec![INF; b + 1]; n + 1];
            let mut np = vec![vec![INF; b + 1]; n + 1];
            let mut nchoice = vec![vec![(usize::MAX, 0, 0); b + 1]; n + 1];
            let (es, _es2) = est.moments(SpeedLevel(level));
            for used in 0..=n {
                for bk in 0..=b {
                    let cur_w = dpw[used][bk];
                    if !cur_w.is_finite() {
                        continue;
                    }
                    let cur_p = dpp[used][bk];
                    let max_take = n - used;
                    for take in 0..=max_take {
                        if level == 0 && take != max_take {
                            continue;
                        }
                        let (add_w, add_p) = if take == 0 {
                            (0.0, 0.0)
                        } else {
                            let lam_tier = cum[used + take] - cum[used];
                            let lam_disk = lam_tier / take as f64;
                            let r = est.response(SpeedLevel(level), lam_disk);
                            if !r.is_finite() {
                                continue;
                            }
                            let rho = (lam_disk * es).min(1.0);
                            (
                                lam_tier * r,
                                take as f64 * (self.idle_w[level] + rho * self.active_extra_w),
                            )
                        };
                        // Conservative: round the consumed power budget up,
                        // so a reconstructed plan always fits the cap.
                        let spent = bk as f64 / b as f64 * cap + add_p;
                        if spent > cap * (1.0 + 1e-9) {
                            continue;
                        }
                        let nbk = ((spent / cap * b as f64).ceil() as usize).min(b);
                        let w = cur_w + add_w;
                        let p = cur_p + add_p;
                        let slot_w = nw[used + take][nbk];
                        if w < slot_w || (w == slot_w && p < np[used + take][nbk]) {
                            nw[used + take][nbk] = w;
                            np[used + take][nbk] = p;
                            nchoice[used + take][nbk] = (used, bk, take);
                        }
                    }
                }
            }
            dpw = nw;
            dpp = np;
            choice.push(nchoice);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (bucket, weighted, power)
        for bk in 0..=b {
            let w = dpw[n][bk];
            if !w.is_finite() {
                continue;
            }
            let p = dpp[n][bk];
            if best.is_none_or(|(_, bw, bp)| w < bw || (w == bw && p < bp)) {
                best = Some((bk, w, p));
            }
        }
        let Some((mut bk, _, _)) = best else {
            return self.min_power_layout(input, est);
        };

        let mut per_level = vec![0usize; levels];
        let mut used = n;
        for (i, level) in (0..levels).rev().enumerate().rev() {
            let (pu, pb, take) = choice[i][used][bk];
            debug_assert_ne!(pu, usize::MAX, "broken DP chain");
            per_level[level] = take;
            used = pu;
            bk = pb;
        }
        debug_assert_eq!(used, 0);

        let mut out = Allocation {
            per_level,
            predicted_response_s: 0.0,
            predicted_power_w: 0.0,
            feasible: false,
        };
        if let Some((resp, pw)) = self.evaluate_unconstrained(input, est, &out.per_level) {
            out.predicted_response_s = resp;
            out.predicted_power_w = pw;
            out.feasible = resp <= input.goal_s;
        }
        out
    }

    /// The all-slowest layout with its real (unconstrained) predictions —
    /// the floor a power cap can push an array to. Always flagged
    /// infeasible: callers reach here only when the cap is unmeetable.
    fn min_power_layout(&self, input: &AllocationInput<'_>, est: &ServiceEstimator) -> Allocation {
        let mut per_level = vec![0usize; self.levels()];
        per_level[0] = input.disks;
        let mut out = Allocation {
            per_level,
            predicted_response_s: 0.0,
            predicted_power_w: 0.0,
            feasible: false,
        };
        if let Some((resp, pw)) = self.evaluate_unconstrained(input, est, &out.per_level) {
            out.predicted_response_s = resp;
            out.predicted_power_w = pw;
        }
        out
    }
}

/// Prefix sums of tier loads: `cum[i]` = total rate of the hottest
/// `i × chunks_per_disk` chunks, for i = 0..=disks.
fn cumulative_rates(chunk_rates: &[f64], disks: usize) -> Vec<f64> {
    let cpd = chunk_rates.len().div_ceil(disks.max(1)).max(1);
    let mut cum = Vec::with_capacity(disks + 1);
    cum.push(0.0);
    let mut acc = 0.0;
    for d in 0..disks {
        let lo = (d * cpd).min(chunk_rates.len());
        let hi = ((d + 1) * cpd).min(chunk_rates.len());
        acc += chunk_rates[lo..hi].iter().sum::<f64>();
        cum.push(acc);
    }
    cum
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::{DiskSpec, ServiceModel};

    fn setup() -> (SpeedAllocator, ServiceEstimator) {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let alloc = SpeedAllocator::new(&PowerModel::new(&spec), 6);
        let est = ServiceEstimator::new(&ServiceModel::new(&spec), 6, 16);
        (alloc, est)
    }

    /// Zipf-ish synthetic chunk rates summing to `total`, sorted descending.
    fn rates(chunks: usize, total: f64) -> Vec<f64> {
        let raw: Vec<f64> = (0..chunks).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|r| r / sum * total).collect()
    }

    /// Exhaustive reference: enumerate all compositions.
    fn exhaustive(
        alloc: &SpeedAllocator,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
    ) -> Option<(Vec<usize>, f64)> {
        fn rec(
            alloc: &SpeedAllocator,
            input: &AllocationInput<'_>,
            est: &ServiceEstimator,
            level: usize,
            left: usize,
            cur: &mut Vec<usize>,
            best: &mut Option<(Vec<usize>, f64)>,
        ) {
            if level == alloc.levels() {
                if left == 0 {
                    if let Some((_, p)) = alloc.evaluate(input, est, cur) {
                        if best.as_ref().is_none_or(|(_, bp)| p < *bp) {
                            *best = Some((cur.clone(), p));
                        }
                    }
                }
                return;
            }
            for take in 0..=left {
                cur.push(take);
                rec(alloc, input, est, level + 1, left - take, cur, best);
                cur.pop();
            }
        }
        let mut best = None;
        rec(
            alloc,
            input,
            est,
            0,
            input.disks,
            &mut Vec::new(),
            &mut best,
        );
        best
    }

    #[test]
    fn idle_array_goes_all_slow() {
        let (alloc, est) = setup();
        let r = rates(64, 0.001); // essentially no load
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.050,
        };
        let a = alloc.allocate(&input, &est);
        assert!(a.feasible);
        assert_eq!(
            a.per_level[0], 8,
            "all disks should crawl: {:?}",
            a.per_level
        );
    }

    #[test]
    fn heavy_load_goes_all_fast() {
        let (alloc, est) = setup();
        // ~150 req/s per disk at 8 disks ≈ ρ≈0.9 even at full speed.
        let r = rates(64, 1100.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.040,
        };
        let a = alloc.allocate(&input, &est);
        let fast: usize = a.per_level[4..].iter().sum();
        assert!(
            fast >= 7,
            "heavy load must keep disks fast: {:?}",
            a.per_level
        );
    }

    #[test]
    fn moderate_skewed_load_mixes_tiers() {
        let (alloc, est) = setup();
        // Very steep skew (∝ 1/i²): the hot head needs fast disks, the cold
        // tail does not, and the goal is loose enough that slow disks are
        // admissible for the tail but too slow for the head.
        let raw: Vec<f64> = (0..64).map(|i| 1.0 / ((i + 1) as f64).powi(2)).collect();
        let sum: f64 = raw.iter().sum();
        let r: Vec<f64> = raw.into_iter().map(|x| x / sum * 250.0).collect();
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.008,
        };
        let a = alloc.allocate(&input, &est);
        assert!(a.feasible, "{:?}", a.per_level);
        let slow_side: usize = a.per_level[..2].iter().sum();
        let fast_side: usize = a.per_level[3..].iter().sum();
        assert!(slow_side > 0, "cold tail should crawl: {:?}", a.per_level);
        assert!(
            fast_side > 0,
            "hot head needs fast disks: {:?}",
            a.per_level
        );
        assert!(a.predicted_response_s <= 0.008);
    }

    #[test]
    fn dp_matches_exhaustive_power() {
        let (alloc, est) = setup();
        for (total, goal) in [(30.0, 0.030), (120.0, 0.025), (400.0, 0.020), (5.0, 0.1)] {
            let r = rates(40, total);
            let input = AllocationInput {
                chunk_rates: &r,
                disks: 5,
                goal_s: goal,
            };
            let dp = alloc.allocate(&input, &est);
            let ex = exhaustive(&alloc, &input, &est);
            match ex {
                Some((_, best_p)) => {
                    assert!(dp.feasible, "DP missed feasible at total={total}");
                    // Discretisation may cost a little; never more than 10%.
                    assert!(
                        dp.predicted_power_w <= best_p * 1.10 + 1e-9,
                        "total={total}: dp {} vs exhaustive {best_p}",
                        dp.predicted_power_w
                    );
                }
                None => assert!(!dp.feasible, "DP found infeasible-only case feasible"),
            }
        }
    }

    #[test]
    fn returned_assignment_meets_goal_under_model() {
        let (alloc, est) = setup();
        let r = rates(64, 200.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.022,
        };
        let a = alloc.allocate(&input, &est);
        if a.feasible {
            let (resp, _) = alloc.evaluate(&input, &est, &a.per_level).unwrap();
            assert!(resp <= input.goal_s + 1e-12);
        }
    }

    #[test]
    fn tighter_goal_means_more_power() {
        let (alloc, est) = setup();
        let r = rates(64, 150.0);
        let mut prev_power = 0.0;
        for goal in [0.100, 0.040, 0.020, 0.012] {
            let input = AllocationInput {
                chunk_rates: &r,
                disks: 8,
                goal_s: goal,
            };
            let a = alloc.allocate(&input, &est);
            assert!(a.feasible, "goal {goal} should be feasible");
            assert!(
                a.predicted_power_w >= prev_power - 1e-9,
                "power must not drop as the goal tightens: {} then {}",
                prev_power,
                a.predicted_power_w
            );
            prev_power = a.predicted_power_w;
        }
    }

    #[test]
    fn impossible_goal_falls_back_to_all_fast() {
        let (alloc, est) = setup();
        let r = rates(64, 2500.0); // saturates even all-fast
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 4,
            goal_s: 0.001,
        };
        let a = alloc.allocate(&input, &est);
        assert!(!a.feasible);
        assert_eq!(*a.per_level.last().unwrap(), 4);
    }

    #[test]
    fn capped_allocation_respects_the_cap() {
        let (alloc, est) = setup();
        let r = rates(64, 150.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.020,
        };
        let free = alloc.allocate_capped(&input, &est, 1e9);
        for cap in [free.predicted_power_w, 70.0, 55.0, 45.0] {
            let a = alloc.allocate_capped(&input, &est, cap);
            assert!(
                a.predicted_power_w <= cap + 1e-9,
                "cap {cap}: plan draws {} W ({:?})",
                a.predicted_power_w,
                a.per_level
            );
            assert_eq!(a.per_level.iter().sum::<usize>(), 8);
        }
    }

    #[test]
    fn tighter_cap_degrades_response_monotonically() {
        let (alloc, est) = setup();
        let r = rates(64, 150.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.020,
        };
        let mut prev = 0.0;
        for cap in [120.0, 70.0, 55.0, 45.0] {
            let a = alloc.allocate_capped(&input, &est, cap);
            assert!(
                a.predicted_response_s >= prev - 1e-12,
                "cap {cap}: response improved from {prev} to {}",
                a.predicted_response_s
            );
            prev = a.predicted_response_s;
        }
    }

    #[test]
    fn unmeetable_cap_returns_the_crawl_layout() {
        let (alloc, est) = setup();
        let r = rates(64, 10.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.050,
        };
        let a = alloc.allocate_capped(&input, &est, 0.5);
        assert!(!a.feasible, "an unmeetable cap is never feasible");
        assert_eq!(a.per_level[0], 8, "floor is all-slowest: {:?}", a.per_level);
    }

    #[test]
    fn generous_cap_matches_the_unconstrained_best_response() {
        let (alloc, est) = setup();
        let r = rates(64, 150.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 8,
            goal_s: 0.020,
        };
        // With an effectively infinite cap the minimum-response plan is
        // whatever the exhaustive search finds as best response.
        let a = alloc.allocate_capped(&input, &est, 1e9);
        let mut best = f64::INFINITY;
        fn rec(
            alloc: &SpeedAllocator,
            input: &AllocationInput<'_>,
            est: &ServiceEstimator,
            level: usize,
            left: usize,
            cur: &mut Vec<usize>,
            best: &mut f64,
        ) {
            if level == alloc.levels() {
                if left == 0 {
                    if let Some((r, _)) = alloc.evaluate_unconstrained(input, est, cur) {
                        *best = best.min(r);
                    }
                }
                return;
            }
            for take in 0..=left {
                cur.push(take);
                rec(alloc, input, est, level + 1, left - take, cur, best);
                cur.pop();
            }
        }
        rec(&alloc, &input, &est, 0, 8, &mut Vec::new(), &mut best);
        assert!(
            a.predicted_response_s <= best * 1.10 + 1e-9,
            "capped {} vs exhaustive best {best}",
            a.predicted_response_s
        );
    }

    #[test]
    fn cumulative_rates_cover_everything() {
        let r = vec![4.0, 3.0, 2.0, 1.0];
        let cum = cumulative_rates(&r, 2);
        assert_eq!(cum, vec![0.0, 7.0, 10.0]);
        // More disks than chunks: later disks take empty ranges.
        let cum = cumulative_rates(&r, 8);
        assert_eq!(cum.len(), 9);
        assert_eq!(*cum.last().unwrap(), 10.0);
    }
}
