//! The performance guard ("automatic performance boosts").
//!
//! The allocator's predictions can be wrong — workloads shift mid-epoch,
//! the M/G/1 model is an approximation, migration lags the plan. The guard
//! is the safety net: it watches the *measured* windowed mean response time
//! and, the moment it crosses the goal, demands a **boost** (everything to
//! full speed, migrations paused). The boost is released only after the
//! windowed mean has stayed comfortably below the goal (a margin) for a
//! hysteresis period, preventing boost/relax oscillation.

use simkit::{SimDuration, SimTime, SlidingWindow};

/// What the policy should do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardAction {
    /// Keep the current (energy-saving) configuration.
    Normal,
    /// Enter boost: all disks to full speed immediately.
    EnterBoost,
    /// Stay boosted.
    HoldBoost,
    /// Leave boost: safe to re-optimise.
    ExitBoost,
}

/// Tunables for the guard.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// The response-time goal, seconds.
    pub goal_s: f64,
    /// Width of the observation window.
    pub window: SimDuration,
    /// Boost ends only after the windowed mean has stayed below
    /// `exit_margin × goal` for this long.
    pub hysteresis: SimDuration,
    /// Fraction of the goal the windowed mean must drop below to arm the
    /// exit timer (< 1.0).
    pub exit_margin: f64,
    /// Minimum samples in the window before the guard may trigger
    /// (prevents one outlier from boosting an idle array).
    pub min_samples: usize,
    /// Number of consecutive violating checks required to enter boost
    /// (debounces single noisy windows around marginal configurations).
    pub entry_checks: u32,
}

impl GuardConfig {
    /// Defaults for a given goal: 5-minute window, 10-minute hysteresis,
    /// 0.9 exit margin, 20-sample minimum.
    pub fn for_goal(goal_s: f64) -> GuardConfig {
        assert!(goal_s > 0.0, "goal must be positive");
        GuardConfig {
            goal_s,
            window: SimDuration::from_mins(5.0),
            hysteresis: SimDuration::from_mins(10.0),
            exit_margin: 0.9,
            min_samples: 20,
            entry_checks: 2,
        }
    }
}

/// The guard state machine.
pub struct PerfGuard {
    cfg: GuardConfig,
    window: SlidingWindow,
    boosted: bool,
    /// Instant the windowed mean last dropped below the exit margin while
    /// boosted (`None` = still above it).
    calm_since: Option<SimTime>,
    /// Consecutive violating checks while not boosted.
    violating_checks: u32,
    boosts: u64,
}

impl PerfGuard {
    /// Creates the guard.
    ///
    /// # Panics
    /// Panics if the exit margin is not in `(0, 1]`.
    pub fn new(cfg: GuardConfig) -> PerfGuard {
        assert!(
            cfg.exit_margin > 0.0 && cfg.exit_margin <= 1.0,
            "exit margin must be in (0, 1]"
        );
        PerfGuard {
            window: SlidingWindow::new(cfg.window),
            cfg,
            boosted: false,
            calm_since: None,
            violating_checks: 0,
            boosts: 0,
        }
    }

    /// The configured goal.
    pub fn goal_s(&self) -> f64 {
        self.cfg.goal_s
    }

    /// True while boosted.
    pub fn is_boosted(&self) -> bool {
        self.boosted
    }

    /// Number of boosts triggered so far.
    pub fn boost_count(&self) -> u64 {
        self.boosts
    }

    /// Feed one completed-request response time.
    pub fn record(&mut self, now: SimTime, response_s: f64) {
        self.window.record(now, response_s);
    }

    /// Force an immediate boost regardless of the measured window — used
    /// when an external emergency (a disk failure) makes the current plan
    /// unsafe. Counts as a boost only when not already boosted; in either
    /// case the calm timer restarts so the boost holds for a full
    /// hysteresis period from `now`.
    pub fn force_boost(&mut self, _now: SimTime) {
        if !self.boosted {
            self.boosted = true;
            self.boosts += 1;
        }
        self.calm_since = None;
        self.violating_checks = 0;
    }

    /// The current windowed mean response time (the guard's own view),
    /// or `None` when the window is empty.
    pub fn windowed_mean(&mut self, now: SimTime) -> Option<f64> {
        self.window.mean(now)
    }

    /// Evaluate the state machine at `now` and return the action to take.
    pub fn check(&mut self, now: SimTime) -> GuardAction {
        let mean = self.window.mean(now);
        let samples = self.window.len(now);
        if !self.boosted {
            match mean {
                Some(m) if samples >= self.cfg.min_samples && m > self.cfg.goal_s => {
                    self.violating_checks += 1;
                    if self.violating_checks >= self.cfg.entry_checks {
                        self.boosted = true;
                        self.boosts += 1;
                        self.calm_since = None;
                        self.violating_checks = 0;
                        GuardAction::EnterBoost
                    } else {
                        GuardAction::Normal
                    }
                }
                _ => {
                    self.violating_checks = 0;
                    GuardAction::Normal
                }
            }
        } else {
            let calm = match mean {
                Some(m) => m <= self.cfg.goal_s * self.cfg.exit_margin,
                // An empty window means no traffic at all — that is calm.
                None => true,
            };
            if calm {
                let since = *self.calm_since.get_or_insert(now);
                if now.saturating_since(since) >= self.cfg.hysteresis {
                    self.boosted = false;
                    self.calm_since = None;
                    return GuardAction::ExitBoost;
                }
            } else {
                self.calm_since = None;
            }
            GuardAction::HoldBoost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn guard() -> PerfGuard {
        PerfGuard::new(GuardConfig {
            goal_s: 0.020,
            window: SimDuration::from_secs(60.0),
            hysteresis: SimDuration::from_secs(120.0),
            exit_margin: 0.9,
            min_samples: 5,
            entry_checks: 1,
        })
    }

    fn debounced_guard() -> PerfGuard {
        PerfGuard::new(GuardConfig {
            goal_s: 0.020,
            window: SimDuration::from_secs(60.0),
            hysteresis: SimDuration::from_secs(120.0),
            exit_margin: 0.9,
            min_samples: 5,
            entry_checks: 2,
        })
    }

    #[test]
    fn quiet_guard_stays_normal() {
        let mut g = guard();
        assert_eq!(g.check(t(10.0)), GuardAction::Normal);
        assert!(!g.is_boosted());
    }

    #[test]
    fn good_latencies_stay_normal() {
        let mut g = guard();
        for i in 0..20 {
            g.record(t(i as f64), 0.010);
        }
        assert_eq!(g.check(t(20.0)), GuardAction::Normal);
    }

    #[test]
    fn violation_triggers_boost_once_enough_samples() {
        let mut g = guard();
        // Too few samples: no boost yet even though the mean violates.
        for i in 0..3 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(3.0)), GuardAction::Normal);
        for i in 3..10 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(10.0)), GuardAction::EnterBoost);
        assert!(g.is_boosted());
        assert_eq!(g.boost_count(), 1);
        assert_eq!(g.check(t(11.0)), GuardAction::HoldBoost);
    }

    #[test]
    fn boost_exits_after_hysteresis() {
        let mut g = guard();
        for i in 0..10 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(10.0)), GuardAction::EnterBoost);
        // Latencies recover.
        for i in 11..200 {
            g.record(t(i as f64), 0.005);
        }
        // Calm but hysteresis not yet elapsed.
        assert_eq!(g.check(t(100.0)), GuardAction::HoldBoost);
        // Keep calm past the hysteresis period (window keeps fresh samples).
        for i in 200..260 {
            g.record(t(i as f64), 0.005);
        }
        assert_eq!(g.check(t(230.0)), GuardAction::ExitBoost);
        assert!(!g.is_boosted());
    }

    #[test]
    fn relapse_resets_hysteresis_timer() {
        let mut g = guard();
        for i in 0..10 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(10.0)), GuardAction::EnterBoost);
        // Calm for a while…
        for i in 11..60 {
            g.record(t(i as f64), 0.005);
        }
        assert_eq!(g.check(t(60.0)), GuardAction::HoldBoost);
        // …then a relapse above the goal resets the calm timer.
        for i in 61..80 {
            g.record(t(i as f64), 0.150);
        }
        assert_eq!(g.check(t(80.0)), GuardAction::HoldBoost);
        // Calm again; the clock restarts, so +60s is still holding…
        for i in 81..260 {
            g.record(t(i as f64), 0.005);
        }
        assert_eq!(g.check(t(150.0)), GuardAction::HoldBoost);
        // …but +120s of calm finally exits.
        assert_eq!(g.check(t(270.0)), GuardAction::ExitBoost);
    }

    #[test]
    fn empty_window_counts_as_calm() {
        let mut g = guard();
        for i in 0..10 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(10.0)), GuardAction::EnterBoost);
        // No traffic at all afterwards; window drains.
        assert_eq!(g.check(t(100.0)), GuardAction::HoldBoost);
        assert_eq!(g.check(t(400.0)), GuardAction::ExitBoost);
    }

    #[test]
    fn entry_debounce_requires_consecutive_violations() {
        let mut g = debounced_guard();
        for i in 0..10 {
            g.record(t(i as f64), 0.100);
        }
        // First violating check: armed but not boosted.
        assert_eq!(g.check(t(10.0)), GuardAction::Normal);
        assert!(!g.is_boosted());
        // Second consecutive violating check: boost.
        assert_eq!(g.check(t(11.0)), GuardAction::EnterBoost);
    }

    #[test]
    fn entry_debounce_resets_on_clean_check() {
        let mut g = debounced_guard();
        for i in 0..10 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(10.0)), GuardAction::Normal); // armed
                                                           // Window recovers before the second check.
        for i in 11..120 {
            g.record(t(i as f64), 0.001);
        }
        assert_eq!(g.check(t(120.0)), GuardAction::Normal); // reset
                                                            // A later single violation must again need two checks.
        for i in 121..180 {
            g.record(t(i as f64), 0.100);
        }
        assert_eq!(g.check(t(180.0)), GuardAction::Normal);
        assert_eq!(g.check(t(181.0)), GuardAction::EnterBoost);
    }

    #[test]
    fn can_boost_repeatedly() {
        let mut g = guard();
        for round in 0..3 {
            let base = round as f64 * 1000.0;
            for i in 0..10 {
                g.record(t(base + i as f64), 0.100);
            }
            assert_eq!(g.check(t(base + 10.0)), GuardAction::EnterBoost);
            // Drain, then let the hysteresis clock run between two checks.
            assert_eq!(g.check(t(base + 300.0)), GuardAction::HoldBoost);
            assert_eq!(g.check(t(base + 500.0)), GuardAction::ExitBoost);
        }
        assert_eq!(g.boost_count(), 3);
    }
}
