//! Turning an allocation into concrete disk targets and migration jobs.
//!
//! The allocator decides *how many* disks spin at each level; the planner
//! decides *which* disks and *which chunks move where*, minimising
//! disruption:
//!
//! * **Disk matching** — disks already at (or heading to) a level are kept
//!   there when the new allocation still wants disks at that level, so an
//!   unchanged allocation causes zero spindle transitions.
//! * **Chunk delta** — the target layout puts the hottest chunk range on
//!   the fastest tier; only chunks whose *current* disk lies outside their
//!   target tier are moved, hottest first, up to a per-epoch budget.
//!   Destinations are chosen to keep per-disk chunk counts balanced.

use array::{ArrayState, ChunkId, DiskId, MigrationJob};
use diskmodel::SpeedLevel;

/// The planner's output for one epoch: concrete disk targets plus the
/// migration delta, bundled by [`plan_epoch`].
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Per-disk target level, indexed by disk id.
    pub disk_levels: Vec<SpeedLevel>,
    /// Migration jobs, most valuable first, already truncated to budget.
    pub jobs: Vec<MigrationJob>,
}

/// Convenience wrapper combining [`match_disks`] and [`plan_migrations`]
/// into one call — the whole planning step for an epoch.
pub fn plan_epoch(
    state: &ArrayState,
    per_level: &[usize],
    ranking: &[ChunkId],
    budget: usize,
) -> EpochPlan {
    let disk_levels = match_disks(state, per_level);
    let jobs = plan_migrations(state, ranking, &disk_levels, budget);
    EpochPlan { disk_levels, jobs }
}

/// Assigns concrete disks to the allocation's per-level counts, preferring
/// to keep each disk at its current effective level. Failed disks are
/// excluded from the matching: the counts must cover exactly the *alive*
/// disks, and a dead disk's output slot carries its (inert) effective
/// level — ramping it is a no-op and the migration planner skips it.
///
/// Returns the per-disk target level, indexed by disk id.
///
/// # Panics
/// Panics if the counts do not sum to the number of alive disks.
pub fn match_disks(state: &ArrayState, per_level: &[usize]) -> Vec<SpeedLevel> {
    let n = state.disks.len();
    assert_eq!(
        per_level.iter().sum::<usize>(),
        state.alive_disks(),
        "counts must cover disks"
    );
    let mut remaining: Vec<usize> = per_level.to_vec();
    let mut out: Vec<Option<SpeedLevel>> = vec![None; n];

    // Pass 0: dead disks keep their inert level and consume no count.
    for (i, d) in state.disks.iter().enumerate() {
        if d.has_failed() {
            out[i] = Some(d.effective_level());
        }
    }
    // Pass 1: keep alive disks already at a level that still wants disks.
    for (i, d) in state.disks.iter().enumerate() {
        if out[i].is_some() {
            continue;
        }
        let l = d.effective_level();
        if remaining[l.index()] > 0 {
            remaining[l.index()] -= 1;
            out[i] = Some(l);
        }
    }
    // Pass 2: hand out the rest, fastest levels to lowest-id free disks
    // (deterministic).
    let mut free: Vec<usize> = (0..n).filter(|&i| out[i].is_none()).collect();
    for level in (0..per_level.len()).rev() {
        for _ in 0..remaining[level] {
            let disk = free.remove(0);
            out[disk] = Some(SpeedLevel(level));
        }
        remaining[level] = 0;
    }
    out.into_iter()
        .map(|o| o.expect("every disk assigned"))
        .collect()
}

/// Plans the chunk moves for the epoch.
///
/// `ranking` is the full chunk ranking hottest→coldest; `disk_levels` the
/// result of [`match_disks`]. Chunks are assigned hottest-first to the
/// fastest tier's disks (each disk taking an equal share), and a
/// [`MigrationJob::Relocate`] is emitted for every chunk not already on a
/// disk of its target tier, until `budget` jobs have been emitted.
pub fn plan_migrations(
    state: &ArrayState,
    ranking: &[ChunkId],
    disk_levels: &[SpeedLevel],
    budget: usize,
) -> Vec<MigrationJob> {
    let n = disk_levels.len();
    if n == 0 || ranking.is_empty() || budget == 0 {
        return Vec::new();
    }
    let alive = state.alive_disks();
    if alive == 0 {
        return Vec::new();
    }
    let cpd = ranking.len().div_ceil(alive);

    // Disks per level, fastest tier first, ids ascending within a tier.
    // Dead disks can neither hold nor receive chunks; leave them out.
    let levels = state.config.spec.num_levels();
    let mut tier_disks: Vec<Vec<DiskId>> = vec![Vec::new(); levels];
    for (i, &l) in disk_levels.iter().enumerate() {
        if !state.disks[i].has_failed() {
            tier_disks[l.index()].push(DiskId(i));
        }
    }

    // Fill counters spread relocation destinations evenly across each tier.
    let mut fill: Vec<usize> = vec![0; n];

    let mut jobs = Vec::new();
    let mut rank_iter = ranking.iter();
    'tiers: for level in (0..levels).rev() {
        let disks = &tier_disks[level];
        if disks.is_empty() {
            continue;
        }
        let capacity = disks.len() * cpd;
        let members: Vec<ChunkId> = rank_iter.by_ref().take(capacity).copied().collect();
        if members.is_empty() {
            continue;
        }
        let in_tier = |d: DiskId| disks.contains(&d);
        // First account for chunks already in place.
        let mut stay = Vec::new();
        let mut movers = Vec::new();
        for &c in &members {
            let cur = state.remap.disk_of(c);
            if in_tier(cur) {
                fill[cur.index()] += 1;
                stay.push(c);
            } else {
                movers.push(c);
            }
        }
        // Movers go to the least-filled tier disk.
        for c in movers {
            let &dst = disks
                .iter()
                .min_by_key(|d| fill[d.index()])
                .expect("tier non-empty");
            fill[dst.index()] += 1;
            jobs.push(MigrationJob::Relocate { chunk: c, dst });
            if jobs.len() >= budget {
                break 'tiers;
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, ArrayStats, MigrationEngine, RemapTable};
    use diskmodel::{Disk, SpinTarget};
    use simkit::{SimDuration, SimTime};

    fn mk_state(disks: usize, chunks: u32) -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = disks;
        config.volume_chunks = chunks;
        let remap = RemapTable::striped(&config);
        let ds = (0..disks)
            .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        ArrayState {
            config,
            disks: ds,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks: array::WakeMarks::new(disks),
        }
    }

    #[test]
    fn unchanged_allocation_keeps_everyone_in_place() {
        let state = mk_state(4, 16);
        // All disks are at level 5; allocation wants 4 at level 5.
        let mut counts = vec![0; 6];
        counts[5] = 4;
        let targets = match_disks(&state, &counts);
        assert!(targets.iter().all(|&l| l == SpeedLevel(5)));
    }

    #[test]
    fn matching_minimises_changes() {
        let mut state = mk_state(4, 16);
        // Move disk 0 and 1 to level 0 first.
        state.disks[0].request_speed(SimTime::ZERO, SpinTarget::Level(SpeedLevel(0)));
        state.disks[1].request_speed(SimTime::ZERO, SpinTarget::Level(SpeedLevel(0)));
        // New allocation wants 1 slow + 3 fast: one of {0,1} stays slow.
        let mut counts = vec![0; 6];
        counts[0] = 1;
        counts[5] = 3;
        let targets = match_disks(&state, &counts);
        let slow: Vec<usize> = targets
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == SpeedLevel(0))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(slow.len(), 1);
        assert!(slow[0] == 0 || slow[0] == 1, "a slow disk should stay slow");
    }

    #[test]
    #[should_panic(expected = "counts must cover")]
    fn match_rejects_bad_counts() {
        let state = mk_state(4, 16);
        let counts = vec![0, 0, 0, 0, 0, 3];
        let _ = match_disks(&state, &counts);
    }

    #[test]
    fn plan_moves_hot_chunks_to_fast_tier() {
        let state = mk_state(4, 16);
        // Allocation: disks 0,1 fast (level 5), disks 2,3 slow (level 0).
        let disk_levels = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        // Ranking: chunks 2, 3 are hottest (they live on disks 2 and 3 under
        // striping), the rest colder.
        let ranking: Vec<ChunkId> = [2u32, 3, 6, 7, 0, 1, 4, 5, 8, 9, 10, 11, 12, 13, 14, 15]
            .iter()
            .map(|&c| ChunkId(c))
            .collect();
        let jobs = plan_migrations(&state, &ranking, &disk_levels, 100);
        // The hot chunks on slow disks (2, 3, 6, 7) must move to disks 0/1.
        let mut moved: Vec<(u32, usize)> = jobs
            .iter()
            .map(|j| match j {
                MigrationJob::Relocate { chunk, dst } => (chunk.0, dst.index()),
                other => panic!("unexpected job {other:?}"),
            })
            .collect();
        moved.sort_unstable();
        for (chunk, dst) in &moved[..4.min(moved.len())] {
            if [2, 3, 6, 7].contains(chunk) {
                assert!(*dst <= 1, "hot chunk {chunk} routed to slow disk {dst}");
            }
        }
        assert!(
            jobs.len() >= 4,
            "hot-on-slow and cold-on-fast chunks both need moves: {}",
            jobs.len()
        );
    }

    #[test]
    fn plan_respects_budget_and_orders_hottest_first() {
        let state = mk_state(4, 16);
        let disk_levels = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let all = plan_migrations(&state, &ranking, &disk_levels, 100);
        let capped = plan_migrations(&state, &ranking, &disk_levels, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(&all[..2], &capped[..]);
    }

    #[test]
    fn aligned_layout_needs_no_moves() {
        let state = mk_state(2, 8);
        // Striping: chunks 0,2,4,6 on disk 0; 1,3,5,7 on disk 1.
        let disk_levels = vec![SpeedLevel(5), SpeedLevel(0)];
        // Ranking exactly matches the current split: disk-0 chunks hottest.
        let ranking: Vec<ChunkId> = [0u32, 2, 4, 6, 1, 3, 5, 7]
            .iter()
            .map(|&c| ChunkId(c))
            .collect();
        let jobs = plan_migrations(&state, &ranking, &disk_levels, 100);
        assert!(jobs.is_empty(), "layout already matches: {jobs:?}");
    }

    #[test]
    fn empty_inputs_no_jobs() {
        let state = mk_state(2, 8);
        assert!(plan_migrations(&state, &[], &[SpeedLevel(0), SpeedLevel(0)], 10).is_empty());
        let ranking: Vec<ChunkId> = (0..8).map(ChunkId).collect();
        assert!(plan_migrations(&state, &ranking, &[SpeedLevel(0), SpeedLevel(0)], 0).is_empty());
    }

    #[test]
    fn plan_epoch_bundles_matching_and_jobs() {
        let state = mk_state(4, 16);
        let mut counts = vec![0; 6];
        counts[0] = 2;
        counts[5] = 2;
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let plan = plan_epoch(&state, &counts, &ranking, 100);
        assert_eq!(plan.disk_levels.len(), 4);
        let manual = plan_migrations(&state, &ranking, &plan.disk_levels, 100);
        assert_eq!(plan.jobs.len(), manual.len());
    }

    #[test]
    fn destinations_stay_balanced() {
        let state = mk_state(4, 32);
        let disk_levels = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let ranking: Vec<ChunkId> = (0..32).map(ChunkId).collect();
        let jobs = plan_migrations(&state, &ranking, &disk_levels, 1000);
        let mut per_dst = std::collections::HashMap::new();
        for j in &jobs {
            if let MigrationJob::Relocate { dst, .. } = j {
                *per_dst.entry(dst.index()).or_insert(0usize) += 1;
            }
        }
        let max = per_dst.values().copied().max().unwrap_or(0);
        let min = per_dst.values().copied().min().unwrap_or(0);
        assert!(max - min <= 2, "unbalanced destinations: {per_dst:?}");
    }
}
