//! The pluggable migration-policy subsystem (see DESIGN.md §17).
//!
//! [`Hibernator`](crate::Hibernator) hosts one [`MigrationPolicy`] object
//! and consults it at every epoch boundary: the policy observes per-chunk
//! access heat plus the epoch's disk-level plan and proposes concrete
//! tier moves; optionally it also takes over the speed/sleep decision
//! itself via [`MigrationPolicy::plan_speeds`] (the SleepScale-style joint
//! optimizer does; the others leave speeds to the analytic allocator).
//!
//! All implementations share one [`MigrationConfig`] vocabulary:
//!
//! * **grace** — a cooldown after a committed move during which the chunk
//!   may not be re-proposed (prevents ping-ponging a chunk between tiers);
//! * **promote/demote thresholds** — hysteresis on the policy's own score
//!   scale: a chunk only moves to a *faster* tier when its score is at
//!   least `promote_threshold`, and to a *slower* tier when its score is
//!   at most `demote_threshold`;
//! * **update period** — how often the policy refreshes its internal
//!   ranking (0 = every epoch);
//! * **move cap** — per-round job cap (combined with the host's epoch
//!   budget by `min`);
//! * **in-flight dedupe** — skip chunks whose previous move is still
//!   copying instead of re-proposing them (the re-proposal would be
//!   dropped by the engine and inflate its `dropped` counter).
//!
//! The first implementor, [`AnalyticPolicy`], wraps the original
//! [`plan_migrations`] planner; with [`MigrationConfig::legacy`] it is
//! bit-identical to the pre-trait code path (locked down by
//! `tests/planner_equivalence.rs` and the `repro` telemetry golden).

use crate::allocator::{Allocation, AllocationInput, SpeedAllocator};
use crate::planner::plan_migrations;
use crate::predictor::ServiceEstimator;
use array::{ArrayState, ChunkId, MigrationJob};
use diskmodel::SpeedLevel;
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Shared tunables of every migration policy.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Cooldown after a committed move: a chunk may not be re-proposed
    /// until `grace` has elapsed since the policy observed the commit.
    pub grace: SimDuration,
    /// Minimum score for a move to a *faster* tier (`0.0` = no gate).
    pub promote_threshold: f64,
    /// Maximum score for a move to a *slower* tier (`∞` = no gate).
    pub demote_threshold: f64,
    /// Internal ranking refresh cadence; `0` refreshes every epoch.
    pub update_period: SimDuration,
    /// Per-round job cap, combined with the host's epoch budget by `min`.
    pub move_cap: usize,
    /// Skip chunks whose previous move is still in flight.
    pub dedupe_inflight: bool,
}

impl MigrationConfig {
    /// The pre-trait planner behaviour: no grace, no thresholds, no
    /// dedupe — every knob vacuous, so [`AnalyticPolicy`] reduces to a
    /// plain [`plan_migrations`] call.
    pub fn legacy() -> MigrationConfig {
        MigrationConfig {
            grace: SimDuration::ZERO,
            promote_threshold: 0.0,
            demote_threshold: f64::INFINITY,
            update_period: SimDuration::ZERO,
            move_cap: usize::MAX,
            dedupe_inflight: false,
        }
    }

    /// Sensible defaults for the adaptive policies: a 5-minute grace
    /// period and in-flight dedupe, thresholds left vacuous (each policy
    /// tightens them on its own score scale).
    pub fn adaptive() -> MigrationConfig {
        MigrationConfig {
            grace: SimDuration::from_mins(5.0),
            dedupe_inflight: true,
            ..MigrationConfig::legacy()
        }
    }

    /// True when every filter is vacuous (the [`plan_migrations`] fast
    /// path is exact).
    pub fn is_vacuous(&self) -> bool {
        self.grace.as_secs() == 0.0
            && !self.dedupe_inflight
            && self.promote_threshold <= 0.0
            && self.demote_threshold.is_infinite()
    }
}

/// What a policy sees at a migration planning round.
pub struct PolicyObservation<'a> {
    /// The planning instant (an epoch boundary).
    pub now: SimTime,
    /// The array, read-only: remap table, disks, migration engine.
    pub state: &'a ArrayState,
    /// The host's chunk ranking, hottest first (heat-ordered; shuffled
    /// under the `Random` migration ablation).
    pub ranking: &'a [ChunkId],
    /// Observed per-chunk request rates aligned with the *heat-ordered*
    /// ranking (empty when the host has none).
    pub rates: &'a [f64],
    /// Per-disk target speed level for the adopted epoch plan.
    pub disk_levels: &'a [SpeedLevel],
    /// The host's per-epoch migration budget (jobs).
    pub budget: usize,
    /// The response-time goal, seconds.
    pub goal_s: f64,
}

/// What a policy sees when offered the speed decision for an epoch.
pub struct SpeedObservation<'a> {
    /// The planning instant.
    pub now: SimTime,
    /// The allocator input the analytic path would use (sorted-descending
    /// chunk rates, alive disk count, effective goal).
    pub input: &'a AllocationInput<'a>,
    /// The host's DP speed allocator.
    pub allocator: &'a SpeedAllocator,
    /// The host's per-level service-time estimator.
    pub estimator: &'a ServiceEstimator,
    /// Externally granted power cap, if any.
    pub power_cap: Option<f64>,
    /// The array, read-only.
    pub state: &'a ArrayState,
    /// Epoch length, seconds.
    pub epoch_s: f64,
}

/// A policy-made speed decision for one epoch.
pub struct SpeedPlan {
    /// The allocation to adopt (per-level counts must cover the alive
    /// disks — sleeping disks are counted at level 0).
    pub alloc: Allocation,
    /// Put every bottom-tier disk into standby instead of crawling at
    /// level 0 (they wake on demand).
    pub sleep_bottom: bool,
}

/// One planning round's accounting, emitted as a `policy` telemetry event.
#[derive(Debug, Clone)]
pub struct PolicyDecisionInfo {
    /// Stable policy name (e.g. `"lfu"`).
    pub policy: &'static str,
    /// Jobs proposed this round.
    pub moves: u32,
    /// Moves withheld because the chunk was inside its grace period.
    pub deferred_grace: u32,
    /// Moves withheld because the chunk's previous move is still copying.
    pub deferred_inflight: u32,
    /// Moves withheld by the promote/demote hysteresis.
    pub skipped_threshold: u32,
    /// The grace period in force, seconds (audited: no chunk may start a
    /// new move within this window of its last commit).
    pub grace_s: f64,
    /// Disks the policy decided to put to sleep this epoch.
    pub sleepers: u32,
}

/// A data-movement brain pluggable into [`Hibernator`](crate::Hibernator).
///
/// Infrequent observation (`observe_access`) feeds per-chunk statistics;
/// once per epoch the host calls [`MigrationPolicy::propose`] (and first
/// offers [`MigrationPolicy::plan_speeds`]) with the epoch's observation.
/// Implementations must be deterministic: identical observation sequences
/// must yield identical proposals (seed any randomness with
/// [`simkit::DetRng`]).
pub trait MigrationPolicy: Send {
    /// Stable policy name for telemetry and reports.
    fn name(&self) -> &'static str;

    /// The shared config in force.
    fn config(&self) -> &MigrationConfig;

    /// A foreground access touched `chunk` (called per request, so keep
    /// it cheap). Default: ignore.
    fn observe_access(&mut self, now: SimTime, chunk: ChunkId) {
        let _ = (now, chunk);
    }

    /// Offered the epoch's speed decision; return `None` to defer to the
    /// host's analytic allocator (the default).
    fn plan_speeds(&mut self, obs: &SpeedObservation<'_>) -> Option<SpeedPlan> {
        let _ = obs;
        None
    }

    /// Propose this round's tier moves. The host clears pending jobs and
    /// enqueues exactly what is returned.
    fn propose(&mut self, obs: &PolicyObservation<'_>) -> Vec<MigrationJob>;

    /// Accounting for the most recent round, or `None` to stay silent in
    /// telemetry (the legacy analytic path stays silent so default
    /// streams remain byte-identical to the pre-trait code).
    fn decision(&self) -> Option<PolicyDecisionInfo> {
        None
    }
}

/// Tracks proposed moves through commit and enforces the grace period.
///
/// The policy cannot see commits directly (the engine commits between
/// epochs), so the tracker re-checks remembered proposals against the
/// remap table at each round: a chunk now living on its proposed
/// destination has committed, and its cooldown starts at the *observation*
/// instant — which is at or after the true commit, so the audited
/// invariant (no new move within `grace` of a commit) holds.
#[derive(Debug, Default)]
pub struct GraceTracker {
    /// chunk -> proposed destination disk index.
    proposals: BTreeMap<u32, usize>,
    /// chunk -> instant its cooldown ends.
    cooldown_until: BTreeMap<u32, SimTime>,
}

impl GraceTracker {
    /// An empty tracker.
    pub fn new() -> GraceTracker {
        GraceTracker::default()
    }

    /// Scans remembered proposals for commits and starts their cooldowns;
    /// prunes expired cooldowns. Call once at the top of every round.
    pub fn note_commits(&mut self, now: SimTime, state: &ArrayState, grace: SimDuration) {
        let committed: Vec<u32> = self
            .proposals
            .iter()
            .filter(|&(&c, &dst)| state.remap.disk_of(ChunkId(c)).index() == dst)
            .map(|(&c, _)| c)
            .collect();
        for c in committed {
            self.proposals.remove(&c);
            if grace.as_secs() > 0.0 {
                self.cooldown_until.insert(c, now + grace);
            }
        }
        self.cooldown_until.retain(|_, &mut until| until > now);
    }

    /// True while `chunk` is inside its post-commit cooldown.
    pub fn blocked(&self, chunk: ChunkId, now: SimTime) -> bool {
        self.cooldown_until
            .get(&chunk.0)
            .is_some_and(|&until| until > now)
    }

    /// Remembers a proposal so its commit can be detected later.
    pub fn note_proposal(&mut self, chunk: ChunkId, dst: usize) {
        self.proposals.insert(chunk.0, dst);
    }
}

/// A filtered planning round's output.
#[derive(Debug, Default)]
pub struct PlanOutcome {
    /// The jobs to enqueue.
    pub jobs: Vec<MigrationJob>,
    /// Movers withheld by the grace period.
    pub deferred_grace: u32,
    /// Movers withheld by in-flight dedupe.
    pub deferred_inflight: u32,
    /// Movers withheld by the promote/demote hysteresis.
    pub skipped_threshold: u32,
}

/// The shared tier-assignment machinery behind every policy: the
/// [`plan_migrations`] algorithm (hottest chunks to fastest tiers,
/// balanced destinations) extended with the [`MigrationConfig`] filters.
///
/// `ranking` is the policy's own chunk ordering (best candidate for the
/// fastest tier first); `scores` is aligned with it and feeds the
/// promote/demote thresholds (pass `&[]` to disable them). With a vacuous
/// config this produces exactly the [`plan_migrations`] jobs.
#[allow(clippy::too_many_arguments)] // mirrors plan_migrations plus the filter inputs
pub fn plan_migrations_filtered(
    state: &ArrayState,
    ranking: &[ChunkId],
    scores: &[f64],
    disk_levels: &[SpeedLevel],
    cfg: &MigrationConfig,
    budget: usize,
    grace: &mut GraceTracker,
    now: SimTime,
) -> PlanOutcome {
    let mut out = PlanOutcome::default();
    let n = disk_levels.len();
    let budget = budget.min(cfg.move_cap);
    if n == 0 || ranking.is_empty() || budget == 0 {
        return out;
    }
    let alive = state.alive_disks();
    if alive == 0 {
        return out;
    }
    let cpd = ranking.len().div_ceil(alive);

    let levels = state.config.spec.num_levels();
    let mut tier_disks: Vec<Vec<array::DiskId>> = vec![Vec::new(); levels];
    for (i, &l) in disk_levels.iter().enumerate() {
        if !state.disks[i].has_failed() {
            tier_disks[l.index()].push(array::DiskId(i));
        }
    }

    let mut fill: Vec<usize> = vec![0; n];
    let mut rank_pos = 0usize;
    'tiers: for level in (0..levels).rev() {
        let disks = &tier_disks[level];
        if disks.is_empty() {
            continue;
        }
        let capacity = disks.len() * cpd;
        let members = &ranking[rank_pos..(rank_pos + capacity).min(ranking.len())];
        let tier_base = rank_pos;
        rank_pos += members.len();
        if members.is_empty() {
            continue;
        }
        let in_tier = |d: array::DiskId| disks.contains(&d);
        let mut movers: Vec<(ChunkId, Option<f64>)> = Vec::new();
        for (k, &c) in members.iter().enumerate() {
            let cur = state.remap.disk_of(c);
            if in_tier(cur) {
                fill[cur.index()] += 1;
            } else {
                // A chunk without a score is never threshold-gated.
                movers.push((c, scores.get(tier_base + k).copied()));
            }
        }
        for (c, score) in movers {
            if grace.blocked(c, now) {
                out.deferred_grace += 1;
                continue;
            }
            if cfg.dedupe_inflight && state.migrator.chunk_in_flight(c) {
                out.deferred_inflight += 1;
                continue;
            }
            // Hysteresis: judge the move's direction by where the chunk's
            // current disk is headed this epoch vs the tier being filled.
            let cur_level = disk_levels[state.remap.disk_of(c).index()].index();
            let gated = match score {
                Some(s) if level > cur_level => s < cfg.promote_threshold,
                Some(s) if level < cur_level => s > cfg.demote_threshold,
                // Lateral rebalance within a tier is always allowed, as is
                // any move for a chunk the policy has no score for.
                _ => false,
            };
            if gated {
                out.skipped_threshold += 1;
                continue;
            }
            let &dst = disks
                .iter()
                .min_by_key(|d| fill[d.index()])
                .expect("tier non-empty");
            fill[dst.index()] += 1;
            grace.note_proposal(c, dst.index());
            out.jobs.push(MigrationJob::Relocate { chunk: c, dst });
            if out.jobs.len() >= budget {
                break 'tiers;
            }
        }
    }
    out
}

/// The original analytic planner behind the trait: temperature ranking in,
/// [`plan_migrations`] out. With [`MigrationConfig::legacy`] (the host's
/// default) the proposal — and the whole run — is bit-identical to the
/// pre-trait code; with filters enabled it routes through
/// [`plan_migrations_filtered`] like every other policy.
pub struct AnalyticPolicy {
    cfg: MigrationConfig,
    grace: GraceTracker,
    last: Option<PolicyDecisionInfo>,
}

impl AnalyticPolicy {
    /// The exact pre-trait behaviour (every filter vacuous).
    pub fn legacy() -> AnalyticPolicy {
        AnalyticPolicy::with_config(MigrationConfig::legacy())
    }

    /// Analytic planning with the given filters.
    pub fn with_config(cfg: MigrationConfig) -> AnalyticPolicy {
        AnalyticPolicy {
            cfg,
            grace: GraceTracker::new(),
            last: None,
        }
    }
}

impl MigrationPolicy for AnalyticPolicy {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    fn propose(&mut self, obs: &PolicyObservation<'_>) -> Vec<MigrationJob> {
        if self.cfg.is_vacuous() {
            // The fast path IS the pre-trait planner call; stay silent in
            // telemetry so legacy streams keep their exact bytes.
            self.last = None;
            return plan_migrations(
                obs.state,
                obs.ranking,
                obs.disk_levels,
                obs.budget.min(self.cfg.move_cap),
            );
        }
        self.grace.note_commits(obs.now, obs.state, self.cfg.grace);
        let out = plan_migrations_filtered(
            obs.state,
            obs.ranking,
            obs.rates,
            obs.disk_levels,
            &self.cfg,
            obs.budget,
            &mut self.grace,
            obs.now,
        );
        self.last = Some(PolicyDecisionInfo {
            policy: self.name(),
            moves: out.jobs.len() as u32,
            deferred_grace: out.deferred_grace,
            deferred_inflight: out.deferred_inflight,
            skipped_threshold: out.skipped_threshold,
            grace_s: self.cfg.grace.as_secs(),
            sleepers: 0,
        });
        out.jobs
    }

    fn decision(&self) -> Option<PolicyDecisionInfo> {
        self.last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, ArrayStats, MigrationEngine, RemapTable};
    use diskmodel::Disk;

    fn mk_state(disks: usize, chunks: u32) -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = disks;
        config.volume_chunks = chunks;
        let remap = RemapTable::striped(&config);
        let ds = (0..disks)
            .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        ArrayState {
            config,
            disks: ds,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks: array::WakeMarks::new(disks),
        }
    }

    fn split_levels() -> Vec<SpeedLevel> {
        vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)]
    }

    /// With every filter vacuous, the filtered planner reproduces
    /// `plan_migrations` exactly — job for job, across budgets.
    #[test]
    fn vacuous_filters_match_reference_planner() {
        for (chunks, budget) in [(16u32, 100usize), (32, 5), (48, 1), (16, 3)] {
            let state = mk_state(4, chunks);
            let ranking: Vec<ChunkId> = (0..chunks).rev().map(ChunkId).collect();
            let reference = plan_migrations(&state, &ranking, &split_levels(), budget);
            let mut grace = GraceTracker::new();
            let filtered = plan_migrations_filtered(
                &state,
                &ranking,
                &[],
                &split_levels(),
                &MigrationConfig::legacy(),
                budget,
                &mut grace,
                SimTime::ZERO,
            );
            assert_eq!(reference, filtered.jobs, "chunks={chunks} budget={budget}");
            assert_eq!(filtered.deferred_grace, 0);
            assert_eq!(filtered.deferred_inflight, 0);
        }
    }

    /// Regression for the epoch-shorter-than-migration-latency bug: a
    /// chunk whose move is mid-copy must not be re-proposed when dedupe is
    /// on (the duplicate would be dropped by the engine), while the legacy
    /// planner (dedupe off) visibly re-plans it.
    #[test]
    fn inflight_dedupe_skips_busy_chunks() {
        let mut state = mk_state(4, 16);
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let first = plan_migrations(&state, &ranking, &split_levels(), 100);
        assert!(!first.is_empty());
        // Start the first job copying (pump holds it active until its read
        // and write complete — which never happens here).
        state.migrator.enqueue(first.clone());
        let mut remap = std::mem::replace(&mut state.remap, RemapTable::striped(&state.config));
        let reqs = state.migrator.pump(SimTime::ZERO, &mut remap);
        state.remap = remap;
        assert!(!reqs.is_empty(), "pump must start a job");
        let busy: Vec<ChunkId> = ranking
            .iter()
            .copied()
            .filter(|&c| state.migrator.chunk_in_flight(c))
            .collect();
        assert!(!busy.is_empty(), "a chunk must be mid-copy");

        // The legacy planner re-plans the busy chunk…
        let replanned = plan_migrations(&state, &ranking, &split_levels(), 100);
        assert!(
            replanned
                .iter()
                .any(|j| matches!(j, MigrationJob::Relocate { chunk, .. } if busy.contains(chunk))),
            "reference planner should re-plan the in-flight chunk"
        );
        // …the deduped round does not.
        let mut cfg = MigrationConfig::legacy();
        cfg.dedupe_inflight = true;
        let mut grace = GraceTracker::new();
        let deduped = plan_migrations_filtered(
            &state,
            &ranking,
            &[],
            &split_levels(),
            &cfg,
            100,
            &mut grace,
            SimTime::ZERO,
        );
        assert!(
            deduped.jobs.iter().all(
                |j| !matches!(j, MigrationJob::Relocate { chunk, .. } if busy.contains(chunk))
            ),
            "dedupe must skip in-flight chunks"
        );
        assert_eq!(deduped.deferred_inflight as usize, busy.len());
    }

    /// A committed move starts the cooldown; the chunk is blocked until
    /// `grace` elapses, then free again.
    #[test]
    fn grace_blocks_recommitted_chunks() {
        let mut state = mk_state(4, 16);
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let mut cfg = MigrationConfig::legacy();
        cfg.grace = SimDuration::from_secs(100.0);
        let mut grace = GraceTracker::new();
        let round1 = plan_migrations_filtered(
            &state,
            &ranking,
            &[],
            &split_levels(),
            &cfg,
            100,
            &mut grace,
            SimTime::ZERO,
        );
        let (chunk, dst) = match round1.jobs[0] {
            MigrationJob::Relocate { chunk, dst } => (chunk, dst),
            ref other => panic!("unexpected job {other:?}"),
        };
        // Commit the move by hand.
        let slot = state.remap.reserve_slot(dst).expect("free slot");
        state.remap.relocate(chunk, dst, slot);
        let now = SimTime::from_secs(10.0);
        grace.note_commits(now, &state, cfg.grace);
        assert!(grace.blocked(chunk, now), "fresh commit must cool down");
        assert!(
            !grace.blocked(chunk, SimTime::from_secs(111.0)),
            "cooldown must expire"
        );
    }

    /// Promote/demote thresholds gate moves by direction: a cold score
    /// cannot promote, a hot score cannot demote, lateral moves pass.
    #[test]
    fn thresholds_gate_by_direction() {
        let state = mk_state(4, 16);
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let scores = vec![0.5f64; 16]; // all below promote, above demote
        let mut cfg = MigrationConfig::legacy();
        cfg.promote_threshold = 1.0;
        cfg.demote_threshold = 0.1;
        let mut grace = GraceTracker::new();
        let out = plan_migrations_filtered(
            &state,
            &ranking,
            &scores,
            &split_levels(),
            &cfg,
            100,
            &mut grace,
            SimTime::ZERO,
        );
        assert!(
            out.jobs.is_empty(),
            "every move should be gated: {:?}",
            out.jobs
        );
        assert!(out.skipped_threshold > 0);
        // With vacuous thresholds the same round emits jobs.
        let out2 = plan_migrations_filtered(
            &state,
            &ranking,
            &scores,
            &split_levels(),
            &MigrationConfig::legacy(),
            100,
            &mut GraceTracker::new(),
            SimTime::ZERO,
        );
        assert!(!out2.jobs.is_empty());
    }

    /// Dead disks neither give up nor receive chunks.
    #[test]
    fn filtered_planner_avoids_dead_disks() {
        let mut state = mk_state(4, 16);
        let _ = state.disks[0].fail(SimTime::ZERO);
        let mut remap = std::mem::replace(&mut state.remap, RemapTable::striped(&state.config));
        let _ = state
            .migrator
            .note_disk_failed(SimTime::ZERO, array::DiskId(0), &mut remap);
        state.remap = remap;
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let mut grace = GraceTracker::new();
        let out = plan_migrations_filtered(
            &state,
            &ranking,
            &[],
            &split_levels(),
            &MigrationConfig::adaptive(),
            100,
            &mut grace,
            SimTime::ZERO,
        );
        for j in &out.jobs {
            if let MigrationJob::Relocate { dst, .. } = j {
                assert_ne!(dst.index(), 0, "dead disk must not receive chunks");
            }
        }
    }
}
