//! # hibernator — disk-array energy management with performance goals
//!
//! A from-scratch reimplementation of the system described in *Hibernator:
//! Helping Disk Arrays Sleep Through the Winter* (SOSP 2005): an energy
//! manager for arrays of multi-speed disks that saves power **without**
//! giving up a response-time goal. Four cooperating mechanisms:
//!
//! * [`mg1_response`] / [`ServiceEstimator`] — an M/G/1 queueing predictor
//!   per speed level, fed by live service-time measurements;
//! * [`SpeedAllocator`] — the once-per-epoch optimisation choosing how many
//!   disks spin at each speed: minimum predicted power subject to the goal
//!   (exact DP, cross-checked against exhaustive search in tests);
//! * [`match_disks`] / [`plan_migrations`] — minimal-disruption mapping of
//!   the allocation onto concrete disks, plus hottest-first chunk moves so
//!   fast disks hold hot data (bounded migration budget per epoch);
//! * [`PerfGuard`] — the measured-response watchdog that boosts everything
//!   to full speed when the goal is endangered and winds back down only
//!   after a hysteresis period.
//!
//! [`Hibernator`] composes them behind [`array::PowerPolicy`]; the
//! [`HibernatorConfig`] defaults follow the design in `DESIGN.md`
//! (2 h epochs, 5 min guard window). The `without_guard` / `without_migration`
//! constructors exist for the ablation experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod allocator;
mod guard;
pub mod migpolicy;
mod planner;
mod policy;
mod predictor;

pub use allocator::{Allocation, AllocationInput, SpeedAllocator};
pub use guard::{GuardAction, GuardConfig, PerfGuard};
pub use migpolicy::{
    plan_migrations_filtered, AnalyticPolicy, GraceTracker, MigrationConfig, MigrationPolicy,
    PlanOutcome, PolicyDecisionInfo, PolicyObservation, SpeedObservation, SpeedPlan,
};
pub use planner::{match_disks, plan_epoch, plan_migrations, EpochPlan};
pub use policy::{Hibernator, HibernatorConfig, HibernatorStats, MigrationMode};
pub use predictor::{mg1_response, ServiceEstimator, RHO_SATURATION};
