//! The Hibernator policy: coarse-grained speed setting + temperature-driven
//! migration + performance guard, composed behind [`array::PowerPolicy`].
//!
//! Per epoch (default 2 h):
//! 1. read the chunk temperatures accumulated since the last epoch;
//! 2. run the [`SpeedAllocator`](crate::SpeedAllocator) for the
//!    minimum-power disk-per-level counts that meet the response goal;
//! 3. apply the **coarse-grain test**: the projected energy saving over the
//!    epoch must exceed the spindle-transition cost of getting there,
//!    otherwise keep the current configuration (this is what makes the
//!    approach *coarse-grained* — cheap oscillations are filtered out);
//! 4. match disks to levels with minimal movement and ramp them;
//! 5. plan and enqueue the chunk migrations (bounded per-epoch budget).
//!
//! Continuously (every tick, default 10 s) the
//! [`PerfGuard`](crate::PerfGuard) watches measured response times; a goal
//! violation boosts every disk to full speed at once and pauses migration
//! until the array has stayed healthy for the hysteresis period.

use crate::allocator::{Allocation, AllocationInput, SpeedAllocator};
use crate::guard::{GuardAction, GuardConfig, PerfGuard};
use crate::migpolicy::{AnalyticPolicy, MigrationPolicy, PolicyObservation, SpeedObservation};
use crate::planner::{match_disks, plan_migrations};
use crate::predictor::ServiceEstimator;
use array::{ArrayState, ChunkId, HeatMap, PowerPolicy};
use diskmodel::{Completion, PowerModel, SpeedLevel, SpinTarget};
use simkit::{DetRng, Ewma, SimDuration, SimTime};
use workload::VolumeRequest;

/// How the epoch planner chooses destinations for data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// Hottest chunks to fastest tiers (the paper's design).
    #[default]
    Temperature,
    /// Chunks shuffled randomly each epoch — the ablation control showing
    /// that *what* you migrate matters, not just *that* you migrate.
    Random,
    /// No data movement at all: speeds adapt, data stays striped.
    None,
}

/// Tunables for [`Hibernator`].
#[derive(Debug, Clone)]
pub struct HibernatorConfig {
    /// Mean response-time goal in seconds (the SLA).
    pub goal_s: f64,
    /// Epoch length — how often speeds/layout are re-decided.
    pub epoch: SimDuration,
    /// Guard/tick cadence.
    pub tick: SimDuration,
    /// Guard observation window.
    pub guard_window: SimDuration,
    /// Guard exit hysteresis.
    pub guard_hysteresis: SimDuration,
    /// Chunk-temperature decay constant.
    pub heat_tau: SimDuration,
    /// Maximum chunks migrated per epoch.
    pub migration_budget: usize,
    /// Skip a re-configuration whose projected epoch saving does not exceed
    /// its transition cost by this factor.
    pub coarse_grain_margin: f64,
    /// Data-migration mode (ablation knob; default temperature-driven).
    pub migration_mode: MigrationMode,
    /// Print one diagnostic line per epoch decision to stderr.
    pub log_epochs: bool,
    /// The allocator plans to `plan_margin × goal`, leaving headroom below
    /// the guard's trip line so marginal configs don't oscillate through
    /// boost/relax cycles.
    pub plan_margin: f64,
    /// Extension beyond the paper's core design: when the *bottom* tier's
    /// per-disk demand falls below [`HibernatorConfig::standby_max_rate`],
    /// its disks stop spinning entirely instead of crawling at the lowest
    /// level. The disks wake on demand (paying the spin-up stall), so this
    /// only pays off in genuinely dead valleys — exactly the diurnal
    /// file-server case.
    pub allow_standby: bool,
    /// Per-disk request rate (req/s) below which a bottom-tier disk may be
    /// sent to standby (only with [`HibernatorConfig::allow_standby`]).
    /// The effective threshold is the minimum of this and the physical
    /// bound `1 / (4 × standby break-even time)` — below the physical
    /// bound, sleep/wake round trips cost more than they save.
    pub standby_max_rate: f64,
}

impl HibernatorConfig {
    /// Defaults from the design: 2 h epochs, 10 s ticks, 5 min guard
    /// window, 10 min hysteresis, heat τ = epoch, 2048-chunk budget.
    pub fn for_goal(goal_s: f64) -> HibernatorConfig {
        assert!(goal_s > 0.0, "goal must be positive");
        HibernatorConfig {
            goal_s,
            epoch: SimDuration::from_hours(2.0),
            tick: SimDuration::from_secs(10.0),
            guard_window: SimDuration::from_mins(5.0),
            guard_hysteresis: SimDuration::from_mins(10.0),
            heat_tau: SimDuration::from_hours(2.0),
            migration_budget: 2048,
            coarse_grain_margin: 1.0,
            migration_mode: MigrationMode::Temperature,
            plan_margin: 0.85,
            allow_standby: false,
            standby_max_rate: 0.001,
            log_epochs: false,
        }
    }
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default)]
pub struct HibernatorStats {
    /// Epochs in which a new configuration was adopted.
    pub reconfigurations: u64,
    /// Epochs skipped by the coarse-grain test.
    pub skipped_by_coarse_grain: u64,
    /// Performance boosts triggered.
    pub boosts: u64,
    /// Epochs where the allocator found no feasible assignment.
    pub infeasible_epochs: u64,
}

/// The Hibernator energy-management policy.
///
/// # Examples
/// ```
/// use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
/// use hibernator::{Hibernator, HibernatorConfig};
/// use simkit::SimDuration;
/// use workload::WorkloadSpec;
///
/// let mut spec = WorkloadSpec::oltp(120.0, 20.0);
/// spec.extents = 512; // small footprint keeps the doctest fast
/// let trace = spec.generate(1);
/// let mut config = ArrayConfig::default_for_volume(1 << 30);
/// config.disks = 4;
///
/// // Calibrate the goal from the unmanaged baseline…
/// let opts = RunOptions::for_horizon(120.0);
/// let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
/// let mut cfg = HibernatorConfig::for_goal(base.response.mean() * 1.5);
/// cfg.epoch = SimDuration::from_secs(30.0); // short run, short epochs
///
/// // …and let Hibernator manage the same workload.
/// let report = run_policy(config, Hibernator::new(cfg), &trace, opts);
/// assert_eq!(report.completed, base.completed);
/// assert!(report.energy.total_joules() <= base.energy.total_joules());
/// ```
pub struct Hibernator {
    cfg: HibernatorConfig,
    heat: Option<HeatMap>,
    /// Reused ranking buffers — one chunk ranking per epoch, no fresh
    /// allocation per planning round.
    rank_scratch: array::RankScratch,
    estimator: Option<ServiceEstimator>,
    allocator: Option<SpeedAllocator>,
    guard: PerfGuard,
    next_epoch: SimTime,
    current: Option<Allocation>,
    stats: HibernatorStats,
    /// Disables the guard entirely (ablation F8).
    guard_enabled: bool,
    /// Response samples before this instant are excluded from the guard's
    /// window: ramping spindles and the post-reconfiguration migration wave
    /// inevitably queue requests for seconds, and counting that
    /// self-inflicted transient against the goal would make every
    /// reconfiguration trigger a boost. Excluding *samples* (rather than
    /// muting the guard) keeps the guard armed with clean data at all
    /// times — an empty window simply reads as "no violation".
    sample_exclude_until: SimTime,
    /// RNG for the `Random` migration ablation.
    shuffle_rng: DetRng,
    /// Disks designated sleep-eligible by the current epoch (standby
    /// extension); re-slept from `on_tick` when idle past break-even.
    standby_disks: std::collections::HashSet<usize>,
    /// Model-calibration feedback: EWMA of observed/predicted response
    /// ratios for the adopted configuration. The M/G/1 model ignores
    /// migration interference and within-tier load clumping, so it runs
    /// optimistic; the allocator divides its goal by this correction,
    /// which converges the closed loop onto real goal compliance instead
    /// of oscillating through the guard.
    model_error: Ewma,
    /// Correction floor/ceiling.
    correction: f64,
    /// Externally granted power cap (fleet arbiter); `None` means
    /// unconstrained and leaves planning bit-identical to a solo array.
    power_cap: Option<f64>,
    /// The pluggable data-movement brain (see [`crate::migpolicy`]).
    /// Always `Some` between calls; taken out during `run_epoch` so the
    /// policy can borrow the host's read-only state. The default
    /// ([`AnalyticPolicy::legacy`]) is bit-identical to the pre-trait
    /// planner.
    mig_policy: Option<Box<dyn MigrationPolicy>>,
    /// Bypass the trait and call [`plan_migrations`] directly — the
    /// reference arm of the equivalence lockdown tests.
    reference_planner: bool,
    /// True while the adopted plan parks the bottom tier in standby at the
    /// migration policy's request (as opposed to the `allow_standby`
    /// config extension, which tracks its own eligibility per epoch).
    current_sleep: bool,
}

impl Hibernator {
    /// Creates the policy.
    pub fn new(cfg: HibernatorConfig) -> Hibernator {
        let guard = PerfGuard::new(GuardConfig {
            goal_s: cfg.goal_s,
            window: cfg.guard_window,
            hysteresis: cfg.guard_hysteresis,
            exit_margin: 0.9,
            min_samples: 20,
            entry_checks: 2,
        });
        Hibernator {
            guard,
            heat: None,
            rank_scratch: array::RankScratch::new(),
            estimator: None,
            allocator: None,
            next_epoch: SimTime::ZERO,
            current: None,
            stats: HibernatorStats::default(),
            guard_enabled: true,
            sample_exclude_until: SimTime::ZERO,
            shuffle_rng: DetRng::new(0x41B, "hibernator-shuffle"),
            standby_disks: std::collections::HashSet::new(),
            model_error: Ewma::new((cfg.epoch / 4.0).max(SimDuration::from_mins(10.0))),
            correction: 1.0,
            power_cap: None,
            mig_policy: Some(Box::new(AnalyticPolicy::legacy())),
            reference_planner: false,
            current_sleep: false,
            cfg,
        }
    }

    /// Creates the policy with a custom migration policy (LFU, bandit,
    /// SleepScale, or a filtered analytic planner).
    pub fn with_policy(cfg: HibernatorConfig, policy: Box<dyn MigrationPolicy>) -> Hibernator {
        let mut h = Hibernator::new(cfg);
        h.mig_policy = Some(policy);
        h
    }

    /// Bypasses the [`MigrationPolicy`] trait entirely and calls the
    /// original planner directly — the reference arm of the equivalence
    /// lockdown tests proving the trait extraction changed nothing.
    pub fn with_reference_planner(mut self) -> Self {
        self.reference_planner = true;
        self
    }

    /// The active migration policy's name.
    pub fn migration_policy_name(&self) -> &'static str {
        self.mig_policy.as_ref().expect("policy present").name()
    }

    /// Disables the performance guard (for the F8 ablation).
    pub fn without_guard(mut self) -> Self {
        self.guard_enabled = false;
        self
    }

    /// Disables data migration (for the F7 ablation): speeds still adapt,
    /// but data stays where striping put it.
    pub fn without_migration(mut self) -> Self {
        self.cfg.migration_mode = MigrationMode::None;
        self
    }

    /// Random chunk placement each epoch (for the F7 ablation).
    pub fn with_random_migration(mut self) -> Self {
        self.cfg.migration_mode = MigrationMode::Random;
        self
    }

    /// Enables the standby extension (see
    /// [`HibernatorConfig::allow_standby`]).
    pub fn with_standby(mut self) -> Self {
        self.cfg.allow_standby = true;
        self
    }

    /// Counters for reporting.
    pub fn stats(&self) -> HibernatorStats {
        self.stats
    }

    /// True while the guard holds the array boosted.
    pub fn is_boosted(&self) -> bool {
        self.guard.is_boosted()
    }

    fn run_epoch(&mut self, now: SimTime, state: &mut ArrayState) {
        // Detach the scratch (and the migration policy) so their borrows
        // do not pin `self` across the `&mut self` calls below; restored
        // on every exit path.
        let mut rank_scratch = std::mem::take(&mut self.rank_scratch);
        let mut policy = self.mig_policy.take().expect("policy present");
        let heat = self.heat.as_ref().expect("init ran");
        let est = self.estimator.as_ref().expect("init ran");
        let alloc = self.allocator.as_ref().expect("init ran");

        // 1. Temperature-sorted chunk rates, into the reused buffers.
        heat.ranking_into(now, &mut rank_scratch);
        let ranking = rank_scratch.ranked();
        let rates: Vec<f64> = ranking.iter().map(|&c| heat.rate(now, c)).collect();

        // 2. Optimise, with the calibrated (tightened) goal and planning
        // headroom below the guard's trip line. Only alive disks are
        // allocatable: after a failure the plan covers the survivors.
        let alive = state.alive_disks();
        if alive == 0 {
            self.rank_scratch = rank_scratch;
            self.mig_policy = Some(policy);
            return;
        }
        let input = AllocationInput {
            chunk_rates: &rates,
            disks: alive,
            goal_s: self.cfg.goal_s * self.cfg.plan_margin / self.correction,
        };
        // The migration policy gets first refusal on the speed decision
        // (the SleepScale joint optimizer takes it); `None` defers to the
        // analytic allocator, bit-identically to the pre-trait code.
        let speed_plan = if self.reference_planner {
            None
        } else {
            policy.plan_speeds(&SpeedObservation {
                now,
                input: &input,
                allocator: alloc,
                estimator: est,
                power_cap: self.power_cap,
                state,
                epoch_s: self.cfg.epoch.as_secs(),
            })
        };
        let plan_sleep = speed_plan.as_ref().is_some_and(|p| p.sleep_bottom);
        let new = match speed_plan {
            Some(p) => p.alloc,
            None => {
                let mut new = alloc.allocate(&input, est);
                // Fleet power cap: only re-plan when the unconstrained
                // optimum busts the cap, so a generous (or absent) cap
                // changes nothing.
                if let Some(cap) = self.power_cap {
                    if new.predicted_power_w > cap {
                        new = alloc.allocate_capped(&input, est, cap);
                    }
                }
                new
            }
        };
        if !new.feasible {
            self.stats.infeasible_epochs += 1;
        }
        if self.cfg.log_epochs {
            eprintln!(
                "[hib] t={:.0}s epoch: corr={:.2} goal_eff={:.2}ms alloc={:?} feas={} pred_resp={:.2}ms pred_pw={:.0}W boosts={}",
                now.as_secs(),
                self.correction,
                input.goal_s * 1e3,
                new.per_level,
                new.feasible,
                new.predicted_response_s * 1e3,
                new.predicted_power_w,
                self.stats.boosts,
            );
        }

        // 3. Coarse-grain test: is the change worth its transition cost?
        let skipped_before = self.stats.skipped_by_coarse_grain;
        let adopted: Allocation = match &self.current {
            // A stale plan sized for a different (pre-failure) disk count
            // can't be compared or kept — adopt the fresh one outright.
            Some(cur) if cur.per_level.iter().sum::<usize>() != alive => new,
            // A kept plan that busts an active power cap must go: the
            // coarse-grain test never overrides the fleet grant.
            Some(cur)
                if self
                    .power_cap
                    .is_some_and(|cap| cur.predicted_power_w > cap) =>
            {
                new
            }
            Some(cur) if cur.per_level == new.per_level => {
                // Same speeds; refresh the stored predictions (they feed the
                // calibration loop) and fall through to re-apply idempotently.
                new
            }
            Some(cur) if cur.feasible && new.feasible => {
                let saving_w = cur.predicted_power_w - new.predicted_power_w;
                let saving_j = saving_w * self.cfg.epoch.as_secs();
                let cost_j = transition_cost_j(state, &new.per_level);
                if saving_j < cost_j * self.cfg.coarse_grain_margin {
                    self.stats.skipped_by_coarse_grain += 1;
                    // Keep the current layout, with predictions refreshed
                    // under this epoch's measured rates.
                    let mut kept = cur.clone();
                    if let Some((resp, pw)) =
                        alloc.evaluate_unconstrained(&input, est, &kept.per_level)
                    {
                        kept.predicted_response_s = resp;
                        kept.predicted_power_w = pw;
                    }
                    kept
                } else {
                    new
                }
            }
            _ => new,
        };

        // A kept plan keeps its sleep decision too; a fresh plan adopts
        // the policy's.
        let kept = self.stats.skipped_by_coarse_grain > skipped_before;
        let adopted_sleep = if kept { self.current_sleep } else { plan_sleep };

        // 4. Apply speeds (and the optional standby extension). All the
        // requests below are no-ops for disks already in the desired state,
        // so re-applying an unchanged allocation costs nothing.
        let targets = match_disks(state, &adopted.per_level);
        let standby = if adopted_sleep {
            // Policy-directed sleep: every bottom-tier disk of the adopted
            // plan parks in standby instead of crawling at level 0.
            let mut out = std::collections::HashSet::new();
            for (i, &l) in targets.iter().enumerate() {
                if l == SpeedLevel(0) && !state.disks[i].has_failed() {
                    out.insert(i);
                }
            }
            out
        } else {
            self.standby_set(state, &adopted, &rates)
        };
        self.current_sleep = adopted_sleep;
        self.standby_disks = standby.clone();
        let mut changed = false;
        for (i, &l) in targets.iter().enumerate() {
            let d = &state.disks[i];
            if d.has_failed() {
                continue;
            }
            if standby.contains(&i) {
                if !d.is_standby() {
                    changed = true;
                }
                state.request_speed(now, i, SpinTarget::Standby);
            } else {
                if d.is_standby() || d.effective_level() != l {
                    changed = true;
                }
                state.request_speed(now, i, SpinTarget::Level(l));
            }
        }
        if changed {
            self.stats.reconfigurations += 1;
            let pm = state.disks[0].power_model();
            let levels = state.config.spec.num_levels();
            let worst_ramp = pm
                .level_transition(SpeedLevel(0), SpeedLevel(levels - 1))
                .duration_s
                .max(
                    pm.level_transition(SpeedLevel(levels - 1), SpeedLevel(0))
                        .duration_s,
                );
            self.sample_exclude_until = now + SimDuration::from_secs(worst_ramp);
        }

        // 5. Migrations — and extend the sample exclusion over the settling
        // transient: ramp backlog drain plus the migration wave (×1.5
        // because foreground interleaving stretches it), capped so the
        // guard always gets the tail of each epoch.
        self.apply_migrations(now, state, ranking, &rates, &adopted, policy.as_mut());
        if changed || !state.migrator.is_quiescent() {
            let drain = 1.5 * self.migration_drain_estimate_s(state, &adopted.per_level);
            if drain > 0.0 {
                let capped = (self.sample_exclude_until + SimDuration::from_secs(drain))
                    .min(now + self.cfg.epoch * 0.8);
                self.sample_exclude_until = self.sample_exclude_until.max(capped);
            }
        }
        state
            .telemetry
            .emit_with(|| telemetry::Event::EpochPlanned {
                time_s: now.as_secs(),
                per_level: adopted.per_level.iter().map(|&n| n as u32).collect(),
                feasible: adopted.feasible,
                predicted_response_s: adopted.predicted_response_s,
                predicted_power_w: adopted.predicted_power_w,
                migration_jobs: state.migrator.pending_len() as u32,
                skipped: self.stats.skipped_by_coarse_grain > skipped_before,
                changed,
            });
        // Policies with active filters report their round accounting; the
        // legacy analytic path returns `None`, keeping default streams
        // byte-identical to the pre-trait code.
        if let Some(info) = policy.decision() {
            let sleepers = if adopted_sleep {
                standby.len() as u32
            } else {
                0
            };
            state
                .telemetry
                .emit_with(|| telemetry::Event::PolicyDecision {
                    time_s: now.as_secs(),
                    policy: info.policy,
                    moves: info.moves,
                    deferred_grace: info.deferred_grace,
                    deferred_inflight: info.deferred_inflight,
                    skipped_threshold: info.skipped_threshold,
                    grace_s: info.grace_s,
                    sleepers: info.sleepers.max(sleepers),
                });
        }
        self.current = Some(adopted);
        self.rank_scratch = rank_scratch;
        self.mig_policy = Some(policy);
    }

    /// The disks (by index) that may stop spinning this epoch: bottom-tier
    /// members whose per-disk share of the coldest chunk range is below the
    /// standby threshold. Empty unless the extension is enabled.
    fn standby_set(
        &self,
        state: &ArrayState,
        alloc: &Allocation,
        sorted_rates: &[f64],
    ) -> std::collections::HashSet<usize> {
        let mut out = std::collections::HashSet::new();
        if !self.cfg.allow_standby {
            return out;
        }
        let n_bottom = alloc.per_level[0];
        if n_bottom == 0 {
            return out;
        }
        let n = state.alive_disks();
        if n == 0 {
            return out;
        }
        let cpd = sorted_rates.len().div_ceil(n).max(1);
        // The bottom tier holds the coldest `n_bottom` disk-ranges.
        let cold_start = (n - n_bottom) * cpd;
        let cold_rate: f64 = sorted_rates
            .get(cold_start.min(sorted_rates.len())..)
            .map(|r| r.iter().sum())
            .unwrap_or(0.0);
        // The sleep/wake round trip from the bottom level must pay for
        // itself between requests; below 1/(4×break-even) it reliably does.
        let breakeven = state.disks[0]
            .power_model()
            .breakeven_standby_s(SpeedLevel(0));
        let threshold = self.cfg.standby_max_rate.min(1.0 / (4.0 * breakeven));
        if cold_rate / n_bottom as f64 >= threshold {
            return out;
        }
        // All bottom-tier disks qualify; identify them via the matching.
        let targets = match_disks(state, &alloc.per_level);
        for (i, &l) in targets.iter().enumerate() {
            if l == SpeedLevel(0) && !state.disks[i].has_failed() {
                out.insert(i);
            }
        }
        out
    }

    /// Rough upper bound on how long the queued migration jobs will take.
    /// Copies run as 128 KiB pieces, each paying its own positioning
    /// overhead, so the estimate is per-piece: read + write pieces per job
    /// at the slowest adopted level, divided by the engine's concurrency.
    fn migration_drain_estimate_s(&self, state: &ArrayState, per_level: &[usize]) -> f64 {
        let jobs = state.migrator.pending_len() + state.migrator.active_len();
        if jobs == 0 {
            return 0.0;
        }
        let slowest = per_level
            .iter()
            .position(|&n| n > 0)
            .unwrap_or(per_level.len() - 1);
        let piece_sectors = 256u32.min(state.config.chunk_sectors as u32);
        let pieces_per_chunk =
            (state.config.chunk_sectors as f64 / f64::from(piece_sectors)).ceil();
        let piece_io = state.disks[0]
            .service_model()
            .expected_random_service_s(SpeedLevel(slowest), piece_sectors);
        jobs as f64 * 2.0 * pieces_per_chunk * piece_io / state.migrator.max_inflight() as f64
    }

    fn apply_migrations(
        &mut self,
        now: SimTime,
        state: &mut ArrayState,
        ranking: &[ChunkId],
        rates: &[f64],
        alloc: &Allocation,
        policy: &mut dyn MigrationPolicy,
    ) {
        let order: Vec<ChunkId> = match self.cfg.migration_mode {
            MigrationMode::None => return,
            MigrationMode::Temperature => ranking.to_vec(),
            MigrationMode::Random => {
                let mut shuffled = ranking.to_vec();
                self.shuffle_rng.shuffle(&mut shuffled);
                shuffled
            }
        };
        let targets = match_disks(state, &alloc.per_level);
        let jobs = if self.reference_planner {
            plan_migrations(state, &order, &targets, self.cfg.migration_budget)
        } else {
            policy.propose(&PolicyObservation {
                now,
                state,
                ranking: &order,
                rates,
                disk_levels: &targets,
                budget: self.cfg.migration_budget,
                goal_s: self.cfg.goal_s,
            })
        };
        state.migrator.clear_pending();
        state.migrator.enqueue(jobs);
    }
}

/// Sum of ramp energies to move the array from its current levels to a new
/// per-level composition (pessimistic: assumes the worst-case matching is
/// avoided by the planner, so cost is computed from the minimal-movement
/// matching).
fn transition_cost_j(state: &ArrayState, per_level: &[usize]) -> f64 {
    let targets = match_disks(state, per_level);
    let pm: &PowerModel = state.disks[0].power_model();
    let mut cost = 0.0;
    for (i, d) in state.disks.iter().enumerate() {
        if d.has_failed() {
            continue;
        }
        let from = d.effective_level();
        let to = targets[i];
        if from != to {
            cost += pm.level_transition(from, to).energy_j;
        }
    }
    cost
}

impl PowerPolicy for Hibernator {
    fn name(&self) -> &str {
        "Hibernator"
    }

    fn init(&mut self, now: SimTime, state: &mut ArrayState) {
        self.heat = Some(HeatMap::new(state.remap.chunks(), self.cfg.heat_tau));
        let spec = &state.config.spec;
        self.estimator = Some(ServiceEstimator::new(
            state.disks[0].service_model(),
            spec.num_levels(),
            16,
        ));
        self.allocator = Some(SpeedAllocator::new(
            state.disks[0].power_model(),
            spec.num_levels(),
        ));
        // First epoch decision happens after one epoch of observation; until
        // then the array stays at full speed (the safe default).
        self.next_epoch = now + self.cfg.epoch;
        self.current = Some(Allocation {
            per_level: {
                let mut v = vec![0; spec.num_levels()];
                v[spec.num_levels() - 1] = state.disks.len();
                v
            },
            predicted_response_s: 0.0,
            predicted_power_w: f64::MAX, // anything beats staying flat-out
            feasible: true,
        });
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.cfg.tick)
    }

    fn set_power_cap(&mut self, cap_w: Option<f64>) {
        self.power_cap = cap_w;
    }

    fn on_volume_arrival(
        &mut self,
        now: SimTime,
        _req: &VolumeRequest,
        chunks: &[ChunkId],
        _state: &mut ArrayState,
    ) {
        if let Some(heat) = &mut self.heat {
            for &c in chunks {
                heat.touch(now, c, 1.0);
            }
        }
        if let Some(p) = self.mig_policy.as_mut() {
            for &c in chunks {
                p.observe_access(now, c);
            }
        }
    }

    fn on_completion(
        &mut self,
        now: SimTime,
        comp: &Completion,
        volume_response_s: Option<f64>,
        state: &mut ArrayState,
    ) {
        // Service moments, keyed by the serving disk's level.
        if let (Some(est), Some(level)) = (
            self.estimator.as_mut(),
            state.disks[comp.disk].current_level(),
        ) {
            if comp.service_s > 0.0 {
                est.record(level, comp.service_s);
            }
        }
        if let Some(r) = volume_response_s {
            // Transition/migration transients are excluded from goal
            // accounting; see `sample_exclude_until`.
            if now >= self.sample_exclude_until {
                self.guard.record(now, r);
            }
        }
    }

    fn on_disk_failure(&mut self, now: SimTime, disk: usize, state: &mut ArrayState) {
        let _ = disk;
        // A failure is the hardest possible performance event: redirected
        // reads double up on the partner and rebuild traffic floods the
        // survivors. Boost immediately — don't wait for the guard's window
        // to fill with blown response times.
        if self.guard_enabled {
            if !self.guard.is_boosted() {
                self.stats.boosts += 1;
                state.telemetry.emit_with(|| telemetry::Event::GuardBoost {
                    time_s: now.as_secs(),
                    entered: true,
                    reason: telemetry::BoostReason::DiskFailure,
                });
            }
            self.guard.force_boost(now);
            // Pause ordinary relocations (rebuilds are immune to pause);
            // the guard's ExitBoost unpauses once the array is calm again.
            state.migrator.set_paused(true);
        } else {
            self.stats.boosts += 1;
            state.telemetry.emit_with(|| telemetry::Event::GuardBoost {
                time_s: now.as_secs(),
                entered: true,
                reason: telemetry::BoostReason::DiskFailure,
            });
        }
        state.migrator.clear_pending();
        let top = state.config.spec.top_level();
        for i in 0..state.disks.len() {
            if !state.disks[i].has_failed() {
                state.request_speed(now, i, SpinTarget::Level(top));
            }
        }
        self.standby_disks.clear();
        self.current_sleep = false;
        // Replace the (now stale) plan with all-survivors-fast, and
        // schedule a fresh epoch decision once things settle.
        let levels = state.config.spec.num_levels();
        let mut v = vec![0; levels];
        v[levels - 1] = state.alive_disks();
        self.current = Some(Allocation {
            per_level: v,
            predicted_response_s: 0.0,
            predicted_power_w: f64::MAX,
            feasible: true,
        });
        self.next_epoch = self.next_epoch.max(now + self.cfg.epoch);
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        if self.guard_enabled {
            match self.guard.check(now) {
                GuardAction::EnterBoost => {
                    self.stats.boosts += 1;
                    state.telemetry.emit_with(|| telemetry::Event::GuardBoost {
                        time_s: now.as_secs(),
                        entered: true,
                        reason: telemetry::BoostReason::Latency,
                    });
                    // A boost is hard evidence the model under-predicted.
                    self.correction = (self.correction * 1.25).min(4.0);
                    self.model_error.observe(now, self.correction);
                    let top = state.config.spec.top_level();
                    for i in 0..state.disks.len() {
                        state.request_speed(now, i, SpinTarget::Level(top));
                    }
                    state.migrator.set_paused(true);
                    state.migrator.clear_pending();
                    self.current_sleep = false;
                    // Remember that we are now flat-out.
                    let levels = state.config.spec.num_levels();
                    let mut v = vec![0; levels];
                    v[levels - 1] = state.alive_disks();
                    self.current = Some(Allocation {
                        per_level: v,
                        predicted_response_s: 0.0,
                        predicted_power_w: f64::MAX,
                        feasible: true,
                    });
                    return;
                }
                GuardAction::HoldBoost => return,
                GuardAction::ExitBoost => {
                    state.telemetry.emit_with(|| telemetry::Event::GuardBoost {
                        time_s: now.as_secs(),
                        entered: false,
                        reason: telemetry::BoostReason::Latency,
                    });
                    state.migrator.set_paused(false);
                    // Re-optimise at the next tick.
                    self.next_epoch = now;
                }
                GuardAction::Normal => {
                    // Calibrate the model against reality while the adopted
                    // configuration is live and unmuted.
                    if let (Some(obs), Some(cur)) =
                        (self.guard.windowed_mean(now), self.current.as_ref())
                    {
                        // Calibrate against any adopted config with a real
                        // prediction — including the all-fast fallback, or
                        // the correction could never relax after a boost.
                        if cur.predicted_response_s > 1e-6 {
                            let ratio = (obs / cur.predicted_response_s).clamp(0.25, 4.0);
                            self.model_error.observe(now, ratio);
                            self.correction =
                                self.model_error.value().unwrap_or(1.0).clamp(1.0, 4.0);
                        }
                    }
                }
            }
        }
        if now >= self.next_epoch {
            self.next_epoch = now + self.cfg.epoch;
            self.run_epoch(now, state);
        }
        // Standby extension: a sleep-eligible disk woken by a stray request
        // goes back to sleep once it has idled past break-even (a per-disk
        // TPM layer restricted to the designated cold set).
        if (self.cfg.allow_standby || self.current_sleep) && !self.standby_disks.is_empty() {
            let breakeven = state.disks[0]
                .power_model()
                .breakeven_standby_s(SpeedLevel(0));
            for &i in &self.standby_disks {
                let d = &state.disks[i];
                if let Some(idle) = d.idle_duration(now) {
                    if idle >= breakeven && !d.is_standby() {
                        state.request_speed(now, i, SpinTarget::Standby);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use workload::WorkloadSpec;

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 4;
        c
    }

    /// Fast-epoch config for short tests.
    fn hib_cfg(goal_s: f64) -> HibernatorConfig {
        HibernatorConfig {
            goal_s,
            epoch: SimDuration::from_secs(200.0),
            tick: SimDuration::from_secs(5.0),
            guard_window: SimDuration::from_secs(60.0),
            guard_hysteresis: SimDuration::from_secs(120.0),
            heat_tau: SimDuration::from_secs(300.0),
            migration_budget: 256,
            coarse_grain_margin: 1.0,
            migration_mode: MigrationMode::Temperature,
            plan_margin: 0.85,
            allow_standby: false,
            standby_max_rate: 0.001,
            log_epochs: false,
        }
    }

    fn skewed_trace(rate: f64, duration: f64, seed: u64) -> workload::Trace {
        let mut spec = WorkloadSpec::oltp(duration, rate);
        spec.extents = 512;
        spec.zipf_theta = 1.05;
        spec.generate(seed)
    }

    #[test]
    fn saves_energy_while_meeting_goal() {
        let trace = skewed_trace(15.0, 2400.0, 51);
        let opts = RunOptions::for_horizon(2400.0);
        let base = run_policy(config(), BasePolicy, &trace, opts.clone());
        let goal = base.response.mean() * 2.0;
        let hib = run_policy(config(), Hibernator::new(hib_cfg(goal)), &trace, opts);
        let savings = hib.savings_vs(&base);
        assert!(savings > 0.15, "Hibernator savings {savings}");
        // Goal compliance is a steady-state property: the first epoch's
        // ramp/migration transient is excluded (its samples are excluded
        // from goal accounting by design; see `sample_exclude_until`).
        let steady: Vec<f64> = hib
            .response_series
            .mean_points()
            .into_iter()
            .filter(|(t, _)| *t > 400.0)
            .map(|(_, v)| v)
            .collect();
        let steady_mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!(
            steady_mean <= goal * 1.15,
            "steady-state goal {goal} blown: {steady_mean}"
        );
        assert_eq!(hib.completed, base.completed);
    }

    #[test]
    fn tight_goal_keeps_disks_fast() {
        let trace = skewed_trace(40.0, 1200.0, 52);
        let opts = RunOptions::for_horizon(1200.0);
        let base = run_policy(config(), BasePolicy, &trace, opts.clone());
        // A goal at 1.02× base mean is nearly impossible to beat with any
        // slow disk; Hibernator should mostly stay fast and save little.
        // (Savings bound is loose because the model may admit brief dips.)
        let goal = base.response.mean() * 1.02;
        let hib = run_policy(config(), Hibernator::new(hib_cfg(goal)), &trace, opts);
        let savings = hib.savings_vs(&base);
        assert!(
            savings < 0.25,
            "tight goal should limit savings, got {savings}"
        );
    }

    #[test]
    fn migrates_hot_data() {
        let trace = skewed_trace(20.0, 1800.0, 53);
        let opts = RunOptions::for_horizon(1800.0);
        let base = run_policy(config(), BasePolicy, &trace, opts.clone());
        let goal = base.response.mean() * 2.0;
        let hib = run_policy(config(), Hibernator::new(hib_cfg(goal)), &trace, opts);
        assert!(
            hib.migration.committed > 10,
            "expected migrations, got {:?}",
            hib.migration
        );
    }

    #[test]
    fn guard_boosts_on_load_surge() {
        // Quiet first half (array slows down), violent second half.
        let mut quiet = WorkloadSpec::oltp(900.0, 4.0);
        quiet.extents = 512;
        let mut storm = WorkloadSpec::oltp(900.0, 250.0);
        storm.extents = 512;
        let mut reqs = quiet.generate(54).requests;
        for mut r in storm.generate(55).requests {
            r.time = SimTime::from_secs(r.time.as_secs() + 900.0);
            reqs.push(r);
        }
        let trace = workload::Trace::from_requests(reqs);
        let opts = RunOptions::for_horizon(1800.0);
        let base = run_policy(config(), BasePolicy, &trace, opts.clone());
        let goal = (base.response.mean() * 1.5).max(0.015);
        let mut cfg = hib_cfg(goal);
        cfg.epoch = SimDuration::from_secs(300.0);

        let sim = array::Simulation::new(config(), Hibernator::new(cfg), &trace, opts);
        let report = sim.run();
        // Adaptation: the storm must raise the average spindle level (via
        // re-optimisation and/or boost).
        let mean_level_in = |lo: f64, hi: f64| {
            let mut weighted = 0.0;
            let mut count = 0.0;
            for (level, series) in report.level_series.iter().take(6).enumerate() {
                for (t, v) in series.mean_points() {
                    if t > lo && t <= hi {
                        weighted += level as f64 * v;
                        count += v;
                    }
                }
            }
            weighted / count.max(1e-9)
        };
        let quiet_level = mean_level_in(500.0, 900.0);
        let storm_level = mean_level_in(1300.0, 1800.0);
        assert!(
            storm_level > quiet_level + 0.2,
            "storm should raise the mean spindle level: quiet {quiet_level:.2} storm {storm_level:.2}"
        );
        // And the storm must not melt down: responses stay bounded.
        let late_resp = report
            .response_series
            .mean_points()
            .into_iter()
            .filter(|(t, _)| *t > 1500.0)
            .map(|(_, v)| v)
            .fold(0.0f64, f64::max);
        assert!(late_resp < 1.0, "storm response collapsed: {late_resp} s");
    }

    #[test]
    fn ablations_construct() {
        let p = Hibernator::new(hib_cfg(0.02))
            .without_guard()
            .without_migration();
        assert_eq!(p.name(), "Hibernator");
        assert!(!p.is_boosted());
    }

    #[test]
    fn no_migration_ablation_saves_less() {
        let trace = skewed_trace(18.0, 2400.0, 56);
        let opts = RunOptions::for_horizon(2400.0);
        let base = run_policy(config(), BasePolicy, &trace, opts.clone());
        let goal = base.response.mean() * 2.0;
        let full = run_policy(
            config(),
            Hibernator::new(hib_cfg(goal)),
            &trace,
            opts.clone(),
        );
        let no_mig = run_policy(
            config(),
            Hibernator::new(hib_cfg(goal)).without_migration(),
            &trace,
            opts,
        );
        assert_eq!(no_mig.migration.committed, 0);
        // Migration concentrates load, letting more disks run slow; without
        // it savings should not exceed the full policy's (allow noise).
        assert!(
            no_mig.savings_vs(&base) <= full.savings_vs(&base) + 0.05,
            "no-mig {} vs full {}",
            no_mig.savings_vs(&base),
            full.savings_vs(&base)
        );
    }

    #[test]
    fn standby_extension_sleeps_dead_valleys() {
        // A brief warm-up burst, then near-silence: with the extension the
        // bottom tier must reach standby, saving energy vs plain Hibernator.
        let mut head = WorkloadSpec::oltp(300.0, 20.0);
        head.extents = 512;
        let mut tail = WorkloadSpec::oltp(3300.0, 0.002);
        tail.extents = 512;
        let mut reqs = head.generate(71).requests;
        for mut r in tail.generate(72).requests {
            r.time = SimTime::from_secs(r.time.as_secs() + 300.0);
            reqs.push(r);
        }
        let trace = workload::Trace::from_requests(reqs);
        let opts = RunOptions::for_horizon(3600.0);
        let plain = run_policy(
            config(),
            Hibernator::new(hib_cfg(0.050)),
            &trace,
            opts.clone(),
        );
        let with_standby = run_policy(
            config(),
            Hibernator::new(hib_cfg(0.050)).with_standby(),
            &trace,
            opts,
        );
        assert!(
            with_standby.energy.joules(simkit::EnergyComponent::Standby) > 0.0,
            "extension must actually stop spindles"
        );
        assert!(
            with_standby.energy.total_joules() < plain.energy.total_joules(),
            "standby {} vs plain {}",
            with_standby.energy.total_joules(),
            plain.energy.total_joules()
        );
        assert_eq!(with_standby.completed, plain.completed);
    }

    #[test]
    fn coarse_grain_test_skips_marginal_changes() {
        let trace = skewed_trace(15.0, 3600.0, 57);
        let mut cfg = hib_cfg(0.1);
        cfg.epoch = SimDuration::from_secs(120.0); // many epochs
        cfg.coarse_grain_margin = 1e9; // absurd margin: never reconfigure twice
        let opts = RunOptions::for_horizon(3600.0);
        let report = run_policy(config(), Hibernator::new(cfg), &trace, opts);
        // With the margin cranked up, after the first reconfiguration every
        // later change is suppressed, so transitions stay low.
        assert!(
            report.transitions <= 8,
            "coarse-grain test failed to suppress churn: {} transitions",
            report.transitions
        );
    }
}
