//! Property tests on the speed allocator: for arbitrary skews, loads, and
//! goals, the DP must be feasible-correct (never returns a goal-violating
//! assignment while claiming feasibility), near-optimal vs exhaustive
//! search, and monotone in the goal.

use diskmodel::{DiskSpec, PowerModel, ServiceModel};
use hibernator::{AllocationInput, ServiceEstimator, SpeedAllocator};
use simkit::DetRng;

fn setup() -> (SpeedAllocator, ServiceEstimator) {
    let spec = DiskSpec::ultrastar_multispeed(6);
    (
        SpeedAllocator::new(&PowerModel::new(&spec), 6),
        ServiceEstimator::new(&ServiceModel::new(&spec), 6, 16),
    )
}

/// Synthetic sorted chunk rates with a controllable skew exponent.
fn rates(chunks: usize, total: f64, skew: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..chunks)
        .map(|i| 1.0 / (i as f64 + 1.0).powf(skew))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|r| r / sum * total).collect()
}

/// Exhaustive minimum-power search (small instances only).
fn exhaustive_best(
    alloc: &SpeedAllocator,
    input: &AllocationInput<'_>,
    est: &ServiceEstimator,
) -> Option<f64> {
    fn rec(
        alloc: &SpeedAllocator,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        level: usize,
        left: usize,
        cur: &mut Vec<usize>,
        best: &mut Option<f64>,
    ) {
        if level == alloc.levels() {
            if left == 0 {
                if let Some((_, p)) = alloc.evaluate(input, est, cur) {
                    if best.is_none_or(|b| p < b) {
                        *best = Some(p);
                    }
                }
            }
            return;
        }
        for take in 0..=left {
            cur.push(take);
            rec(alloc, input, est, level + 1, left - take, cur, best);
            cur.pop();
        }
    }
    let mut best = None;
    rec(
        alloc,
        input,
        est,
        0,
        input.disks,
        &mut Vec::new(),
        &mut best,
    );
    best
}

/// The DP never claims feasibility for an assignment that evaluates
/// above the goal, and every disk is assigned exactly once.
#[test]
fn feasible_claims_are_honest() {
    let (alloc, est) = setup();
    let mut rng = DetRng::new(0xA110C, "alloc-honest");
    for case in 0..48 {
        let total = rng.uniform(1.0, 800.0);
        let skew = rng.uniform(0.0, 2.0);
        let goal_ms = rng.uniform(4.0, 80.0);
        let disks = 2 + rng.below(8) as usize;
        let r = rates(64, total, skew);
        let input = AllocationInput {
            chunk_rates: &r,
            disks,
            goal_s: goal_ms / 1e3,
        };
        let a = alloc.allocate(&input, &est);
        assert_eq!(a.per_level.iter().sum::<usize>(), disks, "case {case}");
        if a.feasible {
            let eval = alloc.evaluate(&input, &est, &a.per_level);
            assert!(
                eval.is_some(),
                "case {case}: claimed-feasible assignment fails evaluation"
            );
            let (resp, power) = eval.unwrap();
            assert!(resp <= input.goal_s + 1e-12, "case {case}");
            assert!((power - a.predicted_power_w).abs() < 1e-6, "case {case}");
        }
    }
}

/// The DP is within 10% of the exhaustive optimum (discretisation
/// bound) and never reports feasible when exhaustive finds nothing.
#[test]
fn near_optimal_vs_exhaustive() {
    let (alloc, est) = setup();
    let mut rng = DetRng::new(0xA110C, "alloc-optimal");
    for case in 0..48 {
        let total = rng.uniform(1.0, 500.0);
        let skew = rng.uniform(0.0, 1.8);
        let goal_ms = rng.uniform(5.0, 60.0);
        let r = rates(40, total, skew);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 4,
            goal_s: goal_ms / 1e3,
        };
        let dp = alloc.allocate(&input, &est);
        match exhaustive_best(&alloc, &input, &est) {
            Some(best) => {
                assert!(dp.feasible, "case {case}: DP missed a feasible case");
                assert!(
                    dp.predicted_power_w <= best * 1.10 + 1e-9,
                    "case {case}: DP {} vs best {}",
                    dp.predicted_power_w,
                    best
                );
            }
            None => assert!(!dp.feasible, "case {case}"),
        }
    }
}

/// Loosening the goal never increases the optimal power.
#[test]
fn power_monotone_in_goal() {
    let (alloc, est) = setup();
    let mut rng = DetRng::new(0xA110C, "alloc-monotone");
    for case in 0..48 {
        let total = rng.uniform(5.0, 400.0);
        let skew = rng.uniform(0.0, 1.5);
        let r = rates(48, total, skew);
        let mut prev = f64::INFINITY;
        for goal_ms in [6.0, 10.0, 20.0, 50.0, 200.0] {
            let input = AllocationInput {
                chunk_rates: &r,
                disks: 6,
                goal_s: goal_ms / 1e3,
            };
            let a = alloc.allocate(&input, &est);
            if a.feasible {
                assert!(
                    a.predicted_power_w <= prev + 1e-6,
                    "case {case}: power rose as goal loosened: {} after {}",
                    a.predicted_power_w,
                    prev
                );
                prev = a.predicted_power_w;
            }
        }
    }
}

/// With effectively no load, the optimum is everything at the bottom.
#[test]
fn idle_always_goes_all_slow() {
    let (alloc, est) = setup();
    for disks in 1usize..12 {
        let r = rates(32, 1e-6, 1.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks,
            goal_s: 0.050,
        };
        let a = alloc.allocate(&input, &est);
        assert!(a.feasible, "disks {disks}");
        assert_eq!(a.per_level[0], disks, "disks {disks}");
    }
}
