//! Property tests on the speed allocator: for arbitrary skews, loads, and
//! goals, the DP must be feasible-correct (never returns a goal-violating
//! assignment while claiming feasibility), near-optimal vs exhaustive
//! search, and monotone in the goal.

use diskmodel::{DiskSpec, PowerModel, ServiceModel};
use hibernator::{AllocationInput, ServiceEstimator, SpeedAllocator};
use proptest::prelude::*;

fn setup() -> (SpeedAllocator, ServiceEstimator) {
    let spec = DiskSpec::ultrastar_multispeed(6);
    (
        SpeedAllocator::new(&PowerModel::new(&spec), 6),
        ServiceEstimator::new(&ServiceModel::new(&spec), 6, 16),
    )
}

/// Synthetic sorted chunk rates with a controllable skew exponent.
fn rates(chunks: usize, total: f64, skew: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..chunks)
        .map(|i| 1.0 / (i as f64 + 1.0).powf(skew))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|r| r / sum * total).collect()
}

/// Exhaustive minimum-power search (small instances only).
fn exhaustive_best(
    alloc: &SpeedAllocator,
    input: &AllocationInput<'_>,
    est: &ServiceEstimator,
) -> Option<f64> {
    fn rec(
        alloc: &SpeedAllocator,
        input: &AllocationInput<'_>,
        est: &ServiceEstimator,
        level: usize,
        left: usize,
        cur: &mut Vec<usize>,
        best: &mut Option<f64>,
    ) {
        if level == alloc.levels() {
            if left == 0 {
                if let Some((_, p)) = alloc.evaluate(input, est, cur) {
                    if best.map_or(true, |b| p < b) {
                        *best = Some(p);
                    }
                }
            }
            return;
        }
        for take in 0..=left {
            cur.push(take);
            rec(alloc, input, est, level + 1, left - take, cur, best);
            cur.pop();
        }
    }
    let mut best = None;
    rec(alloc, input, est, 0, input.disks, &mut Vec::new(), &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP never claims feasibility for an assignment that evaluates
    /// above the goal, and every disk is assigned exactly once.
    #[test]
    fn feasible_claims_are_honest(
        total in 1.0f64..800.0,
        skew in 0.0f64..2.0,
        goal_ms in 4.0f64..80.0,
        disks in 2usize..10,
    ) {
        let (alloc, est) = setup();
        let r = rates(64, total, skew);
        let input = AllocationInput {
            chunk_rates: &r,
            disks,
            goal_s: goal_ms / 1e3,
        };
        let a = alloc.allocate(&input, &est);
        prop_assert_eq!(a.per_level.iter().sum::<usize>(), disks);
        if a.feasible {
            let eval = alloc.evaluate(&input, &est, &a.per_level);
            prop_assert!(eval.is_some(), "claimed-feasible assignment fails evaluation");
            let (resp, power) = eval.unwrap();
            prop_assert!(resp <= input.goal_s + 1e-12);
            prop_assert!((power - a.predicted_power_w).abs() < 1e-6);
        }
    }

    /// The DP is within 10% of the exhaustive optimum (discretisation
    /// bound) and never reports feasible when exhaustive finds nothing.
    #[test]
    fn near_optimal_vs_exhaustive(
        total in 1.0f64..500.0,
        skew in 0.0f64..1.8,
        goal_ms in 5.0f64..60.0,
    ) {
        let (alloc, est) = setup();
        let r = rates(40, total, skew);
        let input = AllocationInput {
            chunk_rates: &r,
            disks: 4,
            goal_s: goal_ms / 1e3,
        };
        let dp = alloc.allocate(&input, &est);
        match exhaustive_best(&alloc, &input, &est) {
            Some(best) => {
                prop_assert!(dp.feasible, "DP missed a feasible case");
                prop_assert!(
                    dp.predicted_power_w <= best * 1.10 + 1e-9,
                    "DP {} vs best {}", dp.predicted_power_w, best
                );
            }
            None => prop_assert!(!dp.feasible),
        }
    }

    /// Loosening the goal never increases the optimal power.
    #[test]
    fn power_monotone_in_goal(
        total in 5.0f64..400.0,
        skew in 0.0f64..1.5,
    ) {
        let (alloc, est) = setup();
        let r = rates(48, total, skew);
        let mut prev = f64::INFINITY;
        for goal_ms in [6.0, 10.0, 20.0, 50.0, 200.0] {
            let input = AllocationInput {
                chunk_rates: &r,
                disks: 6,
                goal_s: goal_ms / 1e3,
            };
            let a = alloc.allocate(&input, &est);
            if a.feasible {
                prop_assert!(
                    a.predicted_power_w <= prev + 1e-6,
                    "power rose as goal loosened: {} after {}",
                    a.predicted_power_w, prev
                );
                prev = a.predicted_power_w;
            }
        }
    }

    /// With effectively no load, the optimum is everything at the bottom.
    #[test]
    fn idle_always_goes_all_slow(disks in 1usize..12) {
        let (alloc, est) = setup();
        let r = rates(32, 1e-6, 1.0);
        let input = AllocationInput {
            chunk_rates: &r,
            disks,
            goal_s: 0.050,
        };
        let a = alloc.allocate(&input, &est);
        prop_assert!(a.feasible);
        prop_assert_eq!(a.per_level[0], disks);
    }
}
