//! # telemetry — deterministic structured observability
//!
//! The abstract's core claim — energy savings *while meeting a
//! response-time goal* — is only checkable if a run can explain why the
//! planner chose its tiers, when the guard boosted, and what each
//! migration cost. This crate provides the machinery:
//!
//! * [`Event`] — the typed vocabulary of decision points: epoch plans,
//!   speed transitions, migration starts/commits/aborts, guard boosts,
//!   fault injections, served requests, power samples, and end-of-run
//!   summaries.
//! * [`Recorder`] — the handle the simulator threads through its state. A
//!   disabled recorder is a single `None`: every emit is one branch and no
//!   event is ever constructed, so the hot path stays allocation-free when
//!   telemetry is off.
//! * [`EventSink`] — a bounded ring buffer with a dropped-event counter;
//!   streams serialize to JSON-lines with the same hand-rolled shortest
//!   round-trip float formatting the workload trace persistence uses.
//! * [`Counters`] and fixed-bucket latency/queue-depth histograms
//!   (`simkit::FixedHistogram`) updated inline as events are recorded.
//! * [`audit`] — a replay auditor that re-derives energy totals, power
//!   integrals, migration concurrency, dead-disk service, and the
//!   goal-violation fraction from the raw stream and reconciles them
//!   against the stream's own trailer.
//!
//! Determinism: events are recorded by a single simulation thread in
//! simulation-time order, and the harness flushes per-run streams sorted
//! by label, so a stream file is byte-identical for any `--jobs` value —
//! the same discipline `crates/parallel` enforces for CSV output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
mod event;
mod recorder;
mod sink;

pub use event::{BoostReason, CacheOp, Event, MoveKind, Tier, TransitionReason, STANDBY};
pub use recorder::{Counters, Recorder, RunStream, TelemetryConfig};
pub use sink::EventSink;
