//! The typed event vocabulary and its JSON-lines serialization.
//!
//! Events are write-only records: the simulator constructs them at decision
//! points and the [`EventSink`](crate::EventSink) serializes them with the
//! same hand-rolled JSON-lines discipline the workload trace persistence
//! uses (`{:?}` floats for shortest round-trip, one object per line). The
//! auditor never reconstructs `Event` values — it scans fields straight out
//! of the text — so variants can carry `&'static str` tags without an owned
//! parse-side mirror.

use simkit::EnergyComponent;
use std::io::{self, Write};

/// Why a disk changed (or started changing) speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionReason {
    /// A power policy asked for the new level via `request_speed`.
    Policy,
    /// A request arrived at a standby disk and auto spin-up kicked in.
    DemandWake,
    /// A latched speed request resumed once the in-flight ramp finished.
    Latched,
}

impl TransitionReason {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionReason::Policy => "policy",
            TransitionReason::DemandWake => "demand_wake",
            TransitionReason::Latched => "latched",
        }
    }
}

/// What kind of migration job committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// A chunk relocated to a reserved slot on another disk.
    Relocate,
    /// Two chunks exchanged slots.
    Swap,
    /// A lost chunk reconstructed onto a survivor.
    Rebuild,
    /// A raw sector-range write (no remap change).
    Raw,
}

impl MoveKind {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            MoveKind::Relocate => "relocate",
            MoveKind::Swap => "swap",
            MoveKind::Rebuild => "rebuild",
            MoveKind::Raw => "raw",
        }
    }
}

/// Why the performance guard acted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoostReason {
    /// The trailing-window response estimate crossed the guard threshold.
    Latency,
    /// A disk failure forced an immediate boost.
    DiskFailure,
}

impl BoostReason {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            BoostReason::Latency => "latency",
            BoostReason::DiskFailure => "disk_failure",
        }
    }
}

/// Which side of the request path a DRAM cache event sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A read request (served or missed by the read cache).
    Read,
    /// A write request (absorbed by the write-back buffer).
    Write,
}

impl CacheOp {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOp::Read => "read",
            CacheOp::Write => "write",
        }
    }
}

/// Speed tier of a disk in an event: the level index, or [`STANDBY`] (-1)
/// for spun-down.
pub type Tier = i32;

/// The [`Tier`] value denoting standby (spun down).
pub const STANDBY: Tier = -1;

/// One structured telemetry event.
///
/// Every variant carries its simulation timestamp `time_s`; a serialized
/// stream is non-decreasing in time. A run's stream starts with
/// [`Event::RunStart`] and ends with [`Event::RunSummary`].
#[derive(Debug, Clone)]
pub enum Event {
    /// Stream header: the run's identity and the parameters the auditor
    /// needs to recompute derived metrics.
    RunStart {
        /// Simulation time (always 0).
        time_s: f64,
        /// Deterministic run label, e.g. `"Hibernator/OLTP"`.
        label: String,
        /// Number of disks in the array.
        disks: u32,
        /// Number of speed levels per disk.
        levels: u32,
        /// Simulated horizon in seconds.
        horizon_s: f64,
        /// Maximum concurrent migration jobs.
        migration_inflight: u32,
        /// Power/queue sampling interval in seconds.
        sample_interval_s: f64,
        /// Response-series bucket width in seconds.
        series_bucket_s: f64,
        /// Response-time goal in seconds (`f64::MAX` for unmanaged runs).
        goal_s: f64,
        /// Warm-up cutoff for goal-violation accounting, in seconds.
        warmup_s: f64,
        /// The run's master seed.
        seed: u64,
    },
    /// The Hibernator planner finished an epoch boundary.
    EpochPlanned {
        /// Simulation time.
        time_s: f64,
        /// Planned disk count per speed level (index = level).
        per_level: Vec<u32>,
        /// Whether the plan met the response goal in the model.
        feasible: bool,
        /// Model-predicted mean response at the plan, seconds.
        predicted_response_s: f64,
        /// Model-predicted average power at the plan, watts.
        predicted_power_w: f64,
        /// Migration jobs enqueued to realize the plan.
        migration_jobs: u32,
        /// True if the coarse-grain check skipped reconfiguration.
        skipped: bool,
        /// True if the layout actually changed.
        changed: bool,
    },
    /// A migration policy finished a planning round (emitted only by
    /// policies with filters active — the legacy analytic path stays
    /// silent so pre-trait streams keep their exact bytes).
    PolicyDecision {
        /// Simulation time.
        time_s: f64,
        /// Stable policy name (e.g. `"lfu"`).
        policy: &'static str,
        /// Migration jobs proposed this round.
        moves: u32,
        /// Moves withheld because the chunk was inside its grace period.
        deferred_grace: u32,
        /// Moves withheld because the chunk's previous move is mid-copy.
        deferred_inflight: u32,
        /// Moves withheld by the promote/demote hysteresis.
        skipped_threshold: u32,
        /// The grace period in force, seconds. Auditable: no chunk may
        /// start a new move within this window of its last commit.
        grace_s: f64,
        /// Disks the policy put to sleep this epoch.
        sleepers: u32,
    },
    /// A disk began a speed transition (or an instant level commit).
    SpeedTransition {
        /// Simulation time.
        time_s: f64,
        /// Disk index.
        disk: u32,
        /// Level left ([`STANDBY`] = -1 for standby).
        from: Tier,
        /// Level targeted ([`STANDBY`] = -1 for standby).
        to: Tier,
        /// What triggered the transition.
        reason: TransitionReason,
        /// True if a sticky-spindle fault stretched the ramp.
        stretched: bool,
    },
    /// A migration job started reading.
    MigrationStarted {
        /// Simulation time.
        time_s: f64,
        /// Engine-assigned job id (unique within a run).
        job: u64,
        /// Chunk (extent) being moved; 0 for raw writes.
        chunk: u64,
        /// Source disk.
        src: u32,
        /// Destination disk.
        dst: u32,
    },
    /// A migration job committed: data moved and the remap updated.
    MigrationMoved {
        /// Simulation time.
        time_s: f64,
        /// Engine-assigned job id.
        job: u64,
        /// Chunk (extent) moved; 0 for raw writes.
        chunk: u64,
        /// Source disk.
        src: u32,
        /// Destination disk.
        dst: u32,
        /// Payload bytes moved.
        bytes: u64,
        /// The kind of job that committed.
        kind: MoveKind,
    },
    /// A migration job aborted (dirtied by foreground writes, or
    /// degenerate).
    MigrationAborted {
        /// Simulation time.
        time_s: f64,
        /// Engine-assigned job id.
        job: u64,
        /// Chunk the job was moving.
        chunk: u64,
    },
    /// A migration job was dropped or orphaned by a disk failure.
    MigrationDropped {
        /// Simulation time.
        time_s: f64,
        /// Engine-assigned job id.
        job: u64,
        /// Chunk the job was moving.
        chunk: u64,
    },
    /// The performance guard entered or left boost mode.
    GuardBoost {
        /// Simulation time.
        time_s: f64,
        /// True on entry, false on exit.
        entered: bool,
        /// What triggered the action.
        reason: BoostReason,
    },
    /// A fault fired (scripted or hazard-driven).
    FaultInjected {
        /// Simulation time.
        time_s: f64,
        /// Disk index.
        disk: u32,
        /// Stable fault tag (see `FaultKind::label`).
        kind: &'static str,
    },
    /// A foreground volume request completed.
    RequestServed {
        /// Simulation time (completion instant).
        time_s: f64,
        /// End-to-end volume latency in microseconds.
        latency_us: f64,
        /// The disk that completed the final piece.
        disk: u32,
        /// That disk's effective speed tier at completion.
        tier: Tier,
    },
    /// A volume request served entirely by the controller DRAM cache
    /// (read hit or absorbed write) — no disk traffic, no `served` event.
    CacheHit {
        /// Simulation time (the arrival instant; DRAM serves in-line).
        time_s: f64,
        /// Latency charged to the request, microseconds.
        latency_us: f64,
        /// Whether the request was a read hit or an absorbed write.
        op: CacheOp,
    },
    /// A read request with at least one piece not resident in DRAM; the
    /// missing pieces continue to the spindle path.
    CacheMiss {
        /// Simulation time (the arrival instant).
        time_s: f64,
        /// Pieces that missed and were submitted to disks.
        chunks: u32,
    },
    /// A write-back flush batch: dirty chunks destaged to their home
    /// disks (these are the writes that can wake a sleeping spindle).
    FlushBatch {
        /// Simulation time.
        time_s: f64,
        /// Dirty chunks destaged in this batch.
        chunks: u32,
        /// Distinct home disks the batch touched.
        disks: u32,
        /// True if the dirty cap forced the flush ahead of the timer.
        forced: bool,
    },
    /// End-of-run DRAM cache accounting (only present when the cache is
    /// enabled; emitted before the per-disk summaries).
    CacheSummary {
        /// Simulation time (the horizon).
        time_s: f64,
        /// Read requests served entirely from DRAM.
        read_hits: u64,
        /// Read requests with at least one miss.
        read_misses: u64,
        /// Write requests absorbed by the write-back buffer.
        write_absorbs: u64,
        /// Dirty chunks destaged by eviction pressure.
        writebacks: u64,
        /// Flush batches issued.
        flushes: u64,
        /// Dirty chunks destaged by flush batches.
        flushed_chunks: u64,
    },
    /// A periodic power sample (mean watts over the preceding interval).
    PowerSample {
        /// Simulation time.
        time_s: f64,
        /// Mean array power over the interval, watts.
        watts: f64,
    },
    /// Per-disk end-of-run accounting.
    DiskSummary {
        /// Simulation time (the horizon).
        time_s: f64,
        /// Disk index.
        disk: u32,
        /// Energy by [`EnergyComponent::ALL`] order, joules.
        energy_j: [f64; 6],
        /// Speed transitions this disk performed.
        transitions: u64,
        /// When the disk failed, if it did.
        failed_at_s: Option<f64>,
    },
    /// Stream trailer: whole-run totals the auditor reconciles against.
    RunSummary {
        /// Simulation time (the horizon).
        time_s: f64,
        /// Total array energy, joules.
        total_j: f64,
        /// Energy by [`EnergyComponent::ALL`] order, joules.
        energy_j: [f64; 6],
        /// Volume requests completed.
        completed: u64,
        /// Requests still in flight at the horizon.
        incomplete: u64,
        /// Speed transitions across all disks.
        transitions: u64,
        /// Mean volume response, seconds.
        mean_response_s: f64,
        /// Goal-violation fraction per the run's goal/warm-up.
        violation: f64,
        /// Latency histogram bucket counts (fixed layout, microseconds).
        latency_hist: Vec<u64>,
        /// Latency histogram overflow count.
        latency_overflow: u64,
        /// Queue-depth histogram bucket counts (sampled).
        queue_hist: Vec<u64>,
        /// Queue-depth histogram overflow count.
        queue_overflow: u64,
        /// Committed migration moves.
        moved: u64,
        /// Final remap-table version (bumps per relocate/swap).
        remap_version: u64,
        /// Events the ring buffer had to drop (0 for a complete stream).
        dropped: u64,
    },
    /// Fleet-stream header/boundary: the arbiter reviewed the fleet at a
    /// fleet-epoch boundary (these live in a dedicated fleet stream, not
    /// in any per-array stream).
    FleetEpoch {
        /// Simulation time (the epoch boundary).
        time_s: f64,
        /// Zero-based fleet epoch index.
        epoch: u32,
        /// Arrays under management.
        arrays: u32,
        /// The datacenter budget in force, watts (`None` = unlimited).
        budget_w: Option<f64>,
        /// Sum of observed per-array power at the boundary, watts.
        demand_w: f64,
    },
    /// The arbiter granted one array its power cap for the next epoch.
    CapGrant {
        /// Simulation time (the epoch boundary).
        time_s: f64,
        /// Array index.
        array: u32,
        /// Granted cap, watts.
        cap_w: f64,
        /// The array's observed power at the boundary, watts.
        observed_w: f64,
    },
    /// The placement planner moved a tenant between arrays at an epoch
    /// boundary (takes effect for the next epoch's requests).
    TenantMove {
        /// Simulation time (the epoch boundary).
        time_s: f64,
        /// Tenant index.
        tenant: u32,
        /// Array the tenant left.
        from_array: u32,
        /// Array the tenant joined.
        to_array: u32,
    },
    /// Fleet-stream trailer: whole-fleet totals the fleet auditor
    /// reconciles against.
    FleetSummary {
        /// Simulation time (the horizon).
        time_s: f64,
        /// Total energy across every array, joules.
        total_j: f64,
        /// Integrated budget over the horizon, joules (`None` = unlimited).
        budget_j: Option<f64>,
        /// Simulated seconds during which observed fleet power exceeded
        /// the budget at a boundary check.
        cap_violation_s: f64,
        /// Volume requests completed across the fleet.
        completed: u64,
        /// Requests still in flight at the horizon, fleet-wide.
        incomplete: u64,
        /// Requests in the shared input trace.
        total_requests: u64,
        /// Requests routed to arrays by the placement map.
        routed_requests: u64,
        /// Tenant moves performed over the run.
        tenant_moves: u64,
    },
}

impl Event {
    /// The event's simulation timestamp.
    pub fn time_s(&self) -> f64 {
        match self {
            Event::RunStart { time_s, .. }
            | Event::EpochPlanned { time_s, .. }
            | Event::PolicyDecision { time_s, .. }
            | Event::SpeedTransition { time_s, .. }
            | Event::MigrationStarted { time_s, .. }
            | Event::MigrationMoved { time_s, .. }
            | Event::MigrationAborted { time_s, .. }
            | Event::MigrationDropped { time_s, .. }
            | Event::GuardBoost { time_s, .. }
            | Event::FaultInjected { time_s, .. }
            | Event::RequestServed { time_s, .. }
            | Event::CacheHit { time_s, .. }
            | Event::CacheMiss { time_s, .. }
            | Event::FlushBatch { time_s, .. }
            | Event::CacheSummary { time_s, .. }
            | Event::PowerSample { time_s, .. }
            | Event::DiskSummary { time_s, .. }
            | Event::RunSummary { time_s, .. }
            | Event::FleetEpoch { time_s, .. }
            | Event::CapGrant { time_s, .. }
            | Event::TenantMove { time_s, .. }
            | Event::FleetSummary { time_s, .. } => *time_s,
        }
    }

    /// Writes the event as one JSON line. Floats use `{:?}` (shortest
    /// round-trip), matching the workload trace persistence format.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            Event::RunStart {
                time_s,
                label,
                disks,
                levels,
                horizon_s,
                migration_inflight,
                sample_interval_s,
                series_bucket_s,
                goal_s,
                warmup_s,
                seed,
            } => writeln!(
                w,
                "{{\"ev\":\"run_start\",\"t\":{time_s:?},\"label\":{label:?},\"disks\":{disks},\
                 \"levels\":{levels},\"horizon_s\":{horizon_s:?},\"inflight\":{migration_inflight},\
                 \"sample_s\":{sample_interval_s:?},\"bucket_s\":{series_bucket_s:?},\
                 \"goal_s\":{goal_s:?},\"warmup_s\":{warmup_s:?},\"seed\":{seed}}}"
            ),
            Event::EpochPlanned {
                time_s,
                per_level,
                feasible,
                predicted_response_s,
                predicted_power_w,
                migration_jobs,
                skipped,
                changed,
            } => {
                write!(w, "{{\"ev\":\"epoch\",\"t\":{time_s:?},\"per_level\":[")?;
                for (i, n) in per_level.iter().enumerate() {
                    if i > 0 {
                        write!(w, ",")?;
                    }
                    write!(w, "{n}")?;
                }
                writeln!(
                    w,
                    "],\"feasible\":{feasible},\"pred_response_s\":{predicted_response_s:?},\
                     \"pred_power_w\":{predicted_power_w:?},\"jobs\":{migration_jobs},\
                     \"skipped\":{skipped},\"changed\":{changed}}}"
                )
            }
            Event::PolicyDecision {
                time_s,
                policy,
                moves,
                deferred_grace,
                deferred_inflight,
                skipped_threshold,
                grace_s,
                sleepers,
            } => writeln!(
                w,
                "{{\"ev\":\"policy\",\"t\":{time_s:?},\"policy\":\"{policy}\",\"moves\":{moves},\
                 \"deferred_grace\":{deferred_grace},\"deferred_inflight\":{deferred_inflight},\
                 \"skipped_threshold\":{skipped_threshold},\"grace_s\":{grace_s:?},\
                 \"sleepers\":{sleepers}}}"
            ),
            Event::SpeedTransition {
                time_s,
                disk,
                from,
                to,
                reason,
                stretched,
            } => writeln!(
                w,
                "{{\"ev\":\"speed\",\"t\":{time_s:?},\"disk\":{disk},\"from\":{from},\"to\":{to},\
                 \"reason\":\"{}\",\"slow\":{stretched}}}",
                reason.as_str()
            ),
            Event::MigrationStarted {
                time_s,
                job,
                chunk,
                src,
                dst,
            } => writeln!(
                w,
                "{{\"ev\":\"mig_start\",\"t\":{time_s:?},\"job\":{job},\"chunk\":{chunk},\
                 \"src\":{src},\"dst\":{dst}}}"
            ),
            Event::MigrationMoved {
                time_s,
                job,
                chunk,
                src,
                dst,
                bytes,
                kind,
            } => writeln!(
                w,
                "{{\"ev\":\"mig_moved\",\"t\":{time_s:?},\"job\":{job},\"chunk\":{chunk},\
                 \"src\":{src},\"dst\":{dst},\"bytes\":{bytes},\"kind\":\"{}\"}}",
                kind.as_str()
            ),
            Event::MigrationAborted { time_s, job, chunk } => writeln!(
                w,
                "{{\"ev\":\"mig_abort\",\"t\":{time_s:?},\"job\":{job},\"chunk\":{chunk}}}"
            ),
            Event::MigrationDropped { time_s, job, chunk } => writeln!(
                w,
                "{{\"ev\":\"mig_drop\",\"t\":{time_s:?},\"job\":{job},\"chunk\":{chunk}}}"
            ),
            Event::GuardBoost {
                time_s,
                entered,
                reason,
            } => writeln!(
                w,
                "{{\"ev\":\"boost\",\"t\":{time_s:?},\"entered\":{entered},\"reason\":\"{}\"}}",
                reason.as_str()
            ),
            Event::FaultInjected { time_s, disk, kind } => writeln!(
                w,
                "{{\"ev\":\"fault\",\"t\":{time_s:?},\"disk\":{disk},\"kind\":\"{kind}\"}}"
            ),
            Event::RequestServed {
                time_s,
                latency_us,
                disk,
                tier,
            } => writeln!(
                w,
                "{{\"ev\":\"served\",\"t\":{time_s:?},\"latency_us\":{latency_us:?},\
                 \"disk\":{disk},\"tier\":{tier}}}"
            ),
            Event::CacheHit {
                time_s,
                latency_us,
                op,
            } => writeln!(
                w,
                "{{\"ev\":\"cache_hit\",\"t\":{time_s:?},\"latency_us\":{latency_us:?},\
                 \"op\":\"{}\"}}",
                op.as_str()
            ),
            Event::CacheMiss { time_s, chunks } => writeln!(
                w,
                "{{\"ev\":\"cache_miss\",\"t\":{time_s:?},\"chunks\":{chunks}}}"
            ),
            Event::FlushBatch {
                time_s,
                chunks,
                disks,
                forced,
            } => writeln!(
                w,
                "{{\"ev\":\"flush\",\"t\":{time_s:?},\"chunks\":{chunks},\"disks\":{disks},\
                 \"forced\":{forced}}}"
            ),
            Event::CacheSummary {
                time_s,
                read_hits,
                read_misses,
                write_absorbs,
                writebacks,
                flushes,
                flushed_chunks,
            } => writeln!(
                w,
                "{{\"ev\":\"cache_summary\",\"t\":{time_s:?},\"read_hits\":{read_hits},\
                 \"read_misses\":{read_misses},\"write_absorbs\":{write_absorbs},\
                 \"writebacks\":{writebacks},\"flushes\":{flushes},\
                 \"flushed_chunks\":{flushed_chunks}}}"
            ),
            Event::PowerSample { time_s, watts } => writeln!(
                w,
                "{{\"ev\":\"power\",\"t\":{time_s:?},\"watts\":{watts:?}}}"
            ),
            Event::DiskSummary {
                time_s,
                disk,
                energy_j,
                transitions,
                failed_at_s,
            } => {
                write!(w, "{{\"ev\":\"disk\",\"t\":{time_s:?},\"disk\":{disk}")?;
                write_energy(w, energy_j)?;
                write!(w, ",\"transitions\":{transitions},\"failed_at_s\":")?;
                match failed_at_s {
                    Some(t) => write!(w, "{t:?}")?,
                    None => write!(w, "null")?,
                }
                writeln!(w, "}}")
            }
            Event::RunSummary {
                time_s,
                total_j,
                energy_j,
                completed,
                incomplete,
                transitions,
                mean_response_s,
                violation,
                latency_hist,
                latency_overflow,
                queue_hist,
                queue_overflow,
                moved,
                remap_version,
                dropped,
            } => {
                write!(
                    w,
                    "{{\"ev\":\"run_end\",\"t\":{time_s:?},\"total_j\":{total_j:?}"
                )?;
                write_energy(w, energy_j)?;
                write!(
                    w,
                    ",\"completed\":{completed},\"incomplete\":{incomplete},\
                     \"transitions\":{transitions},\"mean_response_s\":{mean_response_s:?},\
                     \"violation\":{violation:?},\"latency_hist\":"
                )?;
                write_u64_array(w, latency_hist)?;
                write!(
                    w,
                    ",\"latency_overflow\":{latency_overflow},\"queue_hist\":"
                )?;
                write_u64_array(w, queue_hist)?;
                writeln!(
                    w,
                    ",\"queue_overflow\":{queue_overflow},\"moved\":{moved},\
                     \"remap_version\":{remap_version},\"dropped\":{dropped}}}"
                )
            }
            Event::FleetEpoch {
                time_s,
                epoch,
                arrays,
                budget_w,
                demand_w,
            } => {
                write!(
                    w,
                    "{{\"ev\":\"fleet_epoch\",\"t\":{time_s:?},\"epoch\":{epoch},\
                     \"arrays\":{arrays},\"budget_w\":"
                )?;
                write_opt_f64(w, *budget_w)?;
                writeln!(w, ",\"demand_w\":{demand_w:?}}}")
            }
            Event::CapGrant {
                time_s,
                array,
                cap_w,
                observed_w,
            } => writeln!(
                w,
                "{{\"ev\":\"cap_grant\",\"t\":{time_s:?},\"array\":{array},\
                 \"cap_w\":{cap_w:?},\"observed_w\":{observed_w:?}}}"
            ),
            Event::TenantMove {
                time_s,
                tenant,
                from_array,
                to_array,
            } => writeln!(
                w,
                "{{\"ev\":\"tenant_move\",\"t\":{time_s:?},\"tenant\":{tenant},\
                 \"from\":{from_array},\"to\":{to_array}}}"
            ),
            Event::FleetSummary {
                time_s,
                total_j,
                budget_j,
                cap_violation_s,
                completed,
                incomplete,
                total_requests,
                routed_requests,
                tenant_moves,
            } => {
                write!(
                    w,
                    "{{\"ev\":\"fleet_end\",\"t\":{time_s:?},\"total_j\":{total_j:?},\
                     \"budget_j\":"
                )?;
                write_opt_f64(w, *budget_j)?;
                writeln!(
                    w,
                    ",\"cap_violation_s\":{cap_violation_s:?},\"completed\":{completed},\
                     \"incomplete\":{incomplete},\"total_requests\":{total_requests},\
                     \"routed_requests\":{routed_requests},\"tenant_moves\":{tenant_moves}}}"
                )
            }
        }
    }
}

/// Writes an optional float as its `{:?}` form or `null`.
fn write_opt_f64<W: Write>(w: &mut W, x: Option<f64>) -> io::Result<()> {
    match x {
        Some(v) => write!(w, "{v:?}"),
        None => write!(w, "null"),
    }
}

/// Writes `,"idle_spin":x,"seek":y,…` in [`EnergyComponent::ALL`] order.
fn write_energy<W: Write>(w: &mut W, energy_j: &[f64; 6]) -> io::Result<()> {
    for (c, j) in EnergyComponent::ALL.iter().zip(energy_j) {
        write!(w, ",\"{}\":{j:?}", c.label())?;
    }
    Ok(())
}

fn write_u64_array<W: Write>(w: &mut W, xs: &[u64]) -> io::Result<()> {
    write!(w, "[")?;
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{x}")?;
    }
    write!(w, "]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ev: &Event) -> String {
        let mut buf = Vec::new();
        ev.write_jsonl(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn run_start_serializes_all_parameters() {
        let s = line(&Event::RunStart {
            time_s: 0.0,
            label: "Base/OLTP".into(),
            disks: 16,
            levels: 6,
            horizon_s: 7200.0,
            migration_inflight: 2,
            sample_interval_s: 120.0,
            series_bucket_s: 120.0,
            goal_s: 0.0125,
            warmup_s: 720.0,
            seed: 42,
        });
        assert!(s.starts_with("{\"ev\":\"run_start\","));
        assert!(s.contains("\"label\":\"Base/OLTP\""));
        assert!(s.contains("\"goal_s\":0.0125"));
        assert!(s.ends_with("\"seed\":42}\n"));
    }

    #[test]
    fn served_round_trips_latency_exactly() {
        let s = line(&Event::RequestServed {
            time_s: 3.25,
            latency_us: 5123.456789,
            disk: 7,
            tier: STANDBY,
        });
        let field = s.split("\"latency_us\":").nth(1).unwrap();
        let val: f64 = field.split(',').next().unwrap().parse().unwrap();
        assert_eq!(val, 5123.456789);
        assert!(s.contains("\"tier\":-1"));
    }

    #[test]
    fn summary_energy_uses_component_labels() {
        let s = line(&Event::DiskSummary {
            time_s: 10.0,
            disk: 3,
            energy_j: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            transitions: 9,
            failed_at_s: None,
        });
        assert!(s.contains("\"idle_spin\":1.0"));
        assert!(s.contains("\"migration\":6.0"));
        assert!(s.contains("\"failed_at_s\":null"));
    }

    #[test]
    fn cache_events_serialize_stable_kinds() {
        let hit = line(&Event::CacheHit {
            time_s: 1.5,
            latency_us: 200.0,
            op: CacheOp::Read,
        });
        assert!(hit.starts_with("{\"ev\":\"cache_hit\","));
        assert!(hit.contains("\"op\":\"read\""));
        let miss = line(&Event::CacheMiss {
            time_s: 1.5,
            chunks: 2,
        });
        assert!(miss.starts_with("{\"ev\":\"cache_miss\","));
        let flush = line(&Event::FlushBatch {
            time_s: 30.0,
            chunks: 12,
            disks: 4,
            forced: false,
        });
        assert!(flush.starts_with("{\"ev\":\"flush\","));
        assert!(flush.contains("\"forced\":false"));
        let sum = line(&Event::CacheSummary {
            time_s: 7200.0,
            read_hits: 10,
            read_misses: 4,
            write_absorbs: 6,
            writebacks: 1,
            flushes: 3,
            flushed_chunks: 5,
        });
        assert!(sum.starts_with("{\"ev\":\"cache_summary\","));
        assert!(sum.ends_with("\"flushed_chunks\":5}\n"));
    }

    // A stream is strictly line-oriented: one object, one trailing newline.
    #[test]
    fn every_variant_is_single_line() {
        let evs = [
            Event::EpochPlanned {
                time_s: 1.0,
                per_level: vec![0, 2, 14],
                feasible: true,
                predicted_response_s: 0.005,
                predicted_power_w: 190.0,
                migration_jobs: 3,
                skipped: false,
                changed: true,
            },
            Event::GuardBoost {
                time_s: 2.0,
                entered: true,
                reason: BoostReason::Latency,
            },
            Event::PolicyDecision {
                time_s: 2.5,
                policy: "lfu",
                moves: 7,
                deferred_grace: 2,
                deferred_inflight: 1,
                skipped_threshold: 3,
                grace_s: 300.0,
                sleepers: 0,
            },
            Event::MigrationMoved {
                time_s: 3.0,
                job: 1,
                chunk: 99,
                src: 0,
                dst: 5,
                bytes: 1 << 20,
                kind: MoveKind::Relocate,
            },
        ];
        for ev in &evs {
            let s = line(ev);
            assert_eq!(s.matches('\n').count(), 1);
            assert!(s.ends_with("}\n"));
        }
    }
}
