//! Replay a serialized event stream and check cross-cutting invariants.
//!
//! The auditor is deliberately decoupled from the simulator: it scans the
//! JSON-lines text directly (same field-scanner idiom as the workload
//! trace reader) and reconstructs every derived quantity from first
//! principles — energy totals from per-disk summaries, power integrals
//! from samples, the goal-violation fraction from individual
//! `RequestServed` events — then reconciles them against the stream's own
//! trailer. A bug in either the emitters or the accounting shows up as a
//! failed [`Check`], not a silently wrong figure.
//!
//! A file may concatenate many runs (the harness flushes one stream per
//! run, sorted by label); each `run_start`…`run_end` segment is audited
//! independently.

use std::collections::BTreeMap;
use std::fmt;

/// Audit failure: the stream itself was malformed.
#[derive(Debug)]
pub enum AuditError {
    /// `(line_number, message)` — 1-based line numbers.
    Parse(usize, String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Parse(n, msg) => write!(f, "line {n}: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// One named invariant's verdict for one run.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable check name (e.g. `"energy-conservation"`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence (the reconciled numbers, or the first
    /// violation).
    pub detail: String,
}

/// All checks for one `run_start`…`run_end` segment.
#[derive(Debug, Clone)]
pub struct RunAudit {
    /// The run's label from its header line.
    pub label: String,
    /// Events in the segment (including header and trailer).
    pub events: usize,
    /// The invariant verdicts.
    pub checks: Vec<Check>,
}

impl RunAudit {
    /// True if every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// The audit of a whole stream file.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Per-run audits, in file order.
    pub runs: Vec<RunAudit>,
}

impl AuditOutcome {
    /// True if every run passed every check.
    pub fn passed(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.passed())
    }
}

/// Scans `line` for `"key":` and returns the raw value text, skipping
/// over nested arrays/objects and quoted strings.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    for (i, c) in rest.char_indices() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' => depth -= 1,
            '}' => {
                if depth == 0 {
                    return Some(rest[..i].trim());
                }
                depth -= 1;
            }
            ',' if depth == 0 => return Some(rest[..i].trim()),
            _ => {}
        }
    }
    None
}

fn f64_field(line: &str, n: usize, key: &str) -> Result<f64, AuditError> {
    json_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| AuditError::Parse(n, format!("bad/missing f64 field {key:?}")))
}

fn u64_field(line: &str, n: usize, key: &str) -> Result<u64, AuditError> {
    json_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| AuditError::Parse(n, format!("bad/missing u64 field {key:?}")))
}

fn str_field<'a>(line: &'a str, n: usize, key: &str) -> Result<&'a str, AuditError> {
    json_field(line, key)
        .and_then(|v| v.strip_prefix('"'))
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| AuditError::Parse(n, format!("bad/missing string field {key:?}")))
}

/// An `f64` field that may be JSON `null` (unlimited budgets serialize
/// as `null`).
fn opt_f64_field(line: &str, n: usize, key: &str) -> Result<Option<f64>, AuditError> {
    match json_field(line, key) {
        Some("null") => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| AuditError::Parse(n, format!("bad f64 field {key:?}"))),
        None => Err(AuditError::Parse(n, format!("missing field {key:?}"))),
    }
}

fn u64_array(line: &str, n: usize, key: &str) -> Result<Vec<u64>, AuditError> {
    let raw = json_field(line, key)
        .and_then(|v| v.strip_prefix('['))
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| AuditError::Parse(n, format!("bad/missing array field {key:?}")))?;
    if raw.trim().is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| AuditError::Parse(n, format!("bad element in array {key:?}")))
        })
        .collect()
}

/// Energy-component keys in ledger order (see `simkit::EnergyComponent`).
const COMPONENTS: [&str; 6] = [
    "idle_spin",
    "seek",
    "transfer",
    "transition",
    "standby",
    "migration",
];

/// Trailer totals pulled from a `run_end` line.
struct EndTotals {
    total_j: f64,
    energy_j: [f64; 6],
    completed: u64,
    transitions: u64,
    violation: f64,
    latency_hist_total: u64,
    moved: u64,
    remap_version: u64,
    dropped: u64,
}

/// DRAM-cache totals pulled from a `cache_summary` line.
struct CacheTotals {
    read_hits: u64,
    read_misses: u64,
    write_absorbs: u64,
    flushes: u64,
    flushed_chunks: u64,
}

/// Accumulated state while replaying one run segment.
struct RunAcc {
    label: String,
    disks: u32,
    inflight: u32,
    sample_s: f64,
    bucket_s: f64,
    goal_s: f64,
    warmup_s: f64,
    horizon_s: f64,
    events: usize,
    last_t: f64,
    order_violation: Option<String>,
    /// disk -> failure time (first wins).
    dead: BTreeMap<u32, f64>,
    dead_serve_violation: Option<String>,
    served: u64,
    /// bucket index -> (count, sum of response seconds), insertion order
    /// is replay order so float accumulation matches the simulator's.
    buckets: BTreeMap<u64, (u64, f64)>,
    speed_events: u64,
    active_jobs: BTreeMap<u64, u64>,
    max_active: usize,
    mig_shape_violation: Option<String>,
    moved: u64,
    moved_remap: u64,
    power_sum_j: f64,
    power_samples: u64,
    last_power_t: f64,
    disk_energy_j: [f64; 6],
    disk_transitions: u64,
    disk_summaries: u32,
    /// Replayed `cache_hit` events, total and split by op.
    cache_hits: u64,
    cache_read_hits: u64,
    cache_write_absorbs: u64,
    cache_misses: u64,
    flushes: u64,
    flushed_chunks: u64,
    cache_sum: Option<CacheTotals>,
    /// Replayed `policy` (migration-policy decision) events.
    policy_events: u64,
    /// Grace period (seconds) announced by the latest `policy` event.
    policy_grace_s: f64,
    /// chunk -> (commit time, grace in force at commit) for remap-changing
    /// `mig_moved` events; feeds the migration-grace check.
    chunk_commits: BTreeMap<u64, (f64, f64)>,
    grace_violation: Option<String>,
    end: Option<EndTotals>,
}

impl RunAcc {
    fn new(line: &str, n: usize) -> Result<RunAcc, AuditError> {
        Ok(RunAcc {
            label: str_field(line, n, "label")?.to_string(),
            disks: u64_field(line, n, "disks")? as u32,
            inflight: u64_field(line, n, "inflight")? as u32,
            sample_s: f64_field(line, n, "sample_s")?,
            bucket_s: f64_field(line, n, "bucket_s")?,
            goal_s: f64_field(line, n, "goal_s")?,
            warmup_s: f64_field(line, n, "warmup_s")?,
            horizon_s: f64_field(line, n, "horizon_s")?,
            events: 1,
            last_t: 0.0,
            order_violation: None,
            dead: BTreeMap::new(),
            dead_serve_violation: None,
            served: 0,
            buckets: BTreeMap::new(),
            speed_events: 0,
            active_jobs: BTreeMap::new(),
            max_active: 0,
            mig_shape_violation: None,
            moved: 0,
            moved_remap: 0,
            power_sum_j: 0.0,
            power_samples: 0,
            last_power_t: 0.0,
            disk_energy_j: [0.0; 6],
            disk_transitions: 0,
            disk_summaries: 0,
            cache_hits: 0,
            cache_read_hits: 0,
            cache_write_absorbs: 0,
            cache_misses: 0,
            flushes: 0,
            flushed_chunks: 0,
            cache_sum: None,
            policy_events: 0,
            policy_grace_s: 0.0,
            chunk_commits: BTreeMap::new(),
            grace_violation: None,
            end: None,
        })
    }

    fn note_time(&mut self, t: f64, n: usize) {
        if t < self.last_t - 1e-9 && self.order_violation.is_none() {
            self.order_violation = Some(format!(
                "line {n}: t={t} after t={} — stream not time-ordered",
                self.last_t
            ));
        }
        self.last_t = self.last_t.max(t);
    }

    fn end_job(&mut self, job: u64, n: usize, what: &str) {
        if self.active_jobs.remove(&job).is_none() && self.mig_shape_violation.is_none() {
            self.mig_shape_violation =
                Some(format!("line {n}: {what} for job {job} that never started"));
        }
    }

    /// Recomputes the goal-violation fraction from the replayed
    /// `RequestServed` events using the T4 bucket rule: a bucket counts
    /// only if it starts at or after the warm-up cutoff.
    fn recomputed_violation(&self) -> f64 {
        let (mut kept, mut over) = (0u64, 0u64);
        for (&idx, &(count, sum)) in &self.buckets {
            if (idx as f64) * self.bucket_s < self.warmup_s {
                continue;
            }
            kept += 1;
            if sum / count as f64 > self.goal_s {
                over += 1;
            }
        }
        if kept == 0 {
            0.0
        } else {
            over as f64 / kept as f64
        }
    }

    fn finish(self) -> RunAudit {
        let mut checks = Vec::new();
        let close = |a: f64, b: f64, rel: f64| (a - b).abs() <= rel * a.abs().max(b.abs()) + 1e-6;

        // 1. Stream shape: trailer present, time-ordered, nothing dropped.
        let (shape_ok, shape_detail) = match (&self.end, &self.order_violation) {
            (None, _) => (false, "missing run_end trailer".to_string()),
            (Some(_), Some(v)) => (false, v.clone()),
            (Some(e), None) if e.dropped > 0 => (
                false,
                format!("{} events dropped — stream incomplete", e.dropped),
            ),
            (Some(_), None) => (true, format!("{} events, time-ordered", self.events)),
        };
        checks.push(Check {
            name: "stream-shape",
            passed: shape_ok,
            detail: shape_detail,
        });

        if let Some(end) = &self.end {
            // 2. Energy conservation: Σ per-disk, per-component energies
            //    must equal the trailer's ledger, which must sum to the
            //    total.
            let mut energy_ok = self.disk_summaries == self.disks;
            let mut worst = String::new();
            if !energy_ok {
                worst = format!(
                    "{} disk summaries for {} disks",
                    self.disk_summaries, self.disks
                );
            }
            for (i, name) in COMPONENTS.iter().enumerate() {
                if !close(self.disk_energy_j[i], end.energy_j[i], 1e-9) {
                    energy_ok = false;
                    worst = format!(
                        "{name}: Σdisks {} != run {}",
                        self.disk_energy_j[i], end.energy_j[i]
                    );
                    break;
                }
            }
            let comp_sum: f64 = end.energy_j.iter().sum();
            if !close(comp_sum, end.total_j, 1e-9) {
                energy_ok = false;
                worst = format!("component sum {} != total {}", comp_sum, end.total_j);
            }
            checks.push(Check {
                name: "energy-conservation",
                passed: energy_ok,
                detail: if energy_ok {
                    format!("{} disks reconcile to {:.1} J", self.disks, end.total_j)
                } else {
                    worst
                },
            });

            // 3. Power integration: each sample is mean watts over the
            //    preceding interval, so Σ watts·Δt telescopes to the
            //    cumulative energy at the last sample — exactly the total
            //    when the horizon is a sample multiple, a lower bound
            //    otherwise.
            let integral = self.power_sum_j;
            let covered = self.last_power_t >= self.horizon_s - 1e-6;
            let (power_ok, power_detail) = if self.power_samples == 0 {
                (true, "no power samples (horizon < interval)".to_string())
            } else if covered {
                (
                    close(integral, end.total_j, 1e-7),
                    format!(
                        "∫P dt = {:.3} J vs ledger {:.3} J over {} samples",
                        integral, end.total_j, self.power_samples
                    ),
                )
            } else {
                (
                    integral <= end.total_j * (1.0 + 1e-7) + 1e-6,
                    format!(
                        "partial coverage to t={}: ∫P dt = {:.3} J ≤ {:.3} J",
                        self.last_power_t, integral, end.total_j
                    ),
                )
            };
            checks.push(Check {
                name: "power-integration",
                passed: power_ok,
                detail: power_detail,
            });

            // 4. No request served by a disk the fault ledger says is dead.
            checks.push(match &self.dead_serve_violation {
                Some(v) => Check {
                    name: "dead-disk-serve",
                    passed: false,
                    detail: v.clone(),
                },
                None => Check {
                    name: "dead-disk-serve",
                    passed: true,
                    detail: format!(
                        "{} served, {} disk failure(s)",
                        self.served,
                        self.dead.len()
                    ),
                },
            });

            // 5. Migration concurrency never exceeds the configured cap,
            //    and every job end matches a start.
            let mig_ok =
                self.mig_shape_violation.is_none() && self.max_active <= self.inflight as usize;
            checks.push(Check {
                name: "migration-inflight",
                passed: mig_ok,
                detail: match &self.mig_shape_violation {
                    Some(v) => v.clone(),
                    None => format!(
                        "peak {} concurrent of cap {}",
                        self.max_active, self.inflight
                    ),
                },
            });

            // 6. Goal-violation fraction recomputed from RequestServed
            //    events matches the trailer's (same bucket/warm-up rule).
            let recomputed = self.recomputed_violation();
            let viol_ok = (recomputed - end.violation).abs() <= 1e-9;
            checks.push(Check {
                name: "violation-refit",
                passed: viol_ok,
                detail: format!(
                    "recomputed {:.6} vs reported {:.6} (goal {:.4} ms)",
                    recomputed,
                    end.violation,
                    self.goal_s * 1e3
                ),
            });

            // 7. Count consistency across independent tallies. Completions
            //    are served from disk *or* from the controller DRAM cache,
            //    so both sides of the request path must add up.
            let mut count_ok = true;
            let mut count_detail = format!(
                "served {}, hits {}, transitions {}, moved {}",
                self.served, self.cache_hits, self.speed_events, self.moved
            );
            let pairs: [(&str, u64, u64); 6] = [
                (
                    "served + hits vs completed",
                    self.served + self.cache_hits,
                    end.completed,
                ),
                (
                    "served + hits vs latency_hist",
                    self.served + self.cache_hits,
                    end.latency_hist_total,
                ),
                (
                    "speed events vs transitions",
                    self.speed_events,
                    end.transitions,
                ),
                (
                    "speed events vs disk summaries",
                    self.speed_events,
                    self.disk_transitions,
                ),
                ("mig_moved vs moved", self.moved, end.moved),
                ("remap version", self.moved_remap, end.remap_version),
            ];
            for (what, a, b) in pairs {
                if a != b {
                    count_ok = false;
                    count_detail = format!("{what}: {a} != {b}");
                    break;
                }
            }
            checks.push(Check {
                name: "count-consistency",
                passed: count_ok,
                detail: count_detail,
            });

            // 8. Cache accounting (only for runs that used the DRAM
            //    cache): every completion was a hit or a disk serve, and
            //    the replayed cache events reconcile with the
            //    cache_summary totals.
            let cache_active = self.cache_sum.is_some()
                || self.cache_hits > 0
                || self.cache_misses > 0
                || self.flushes > 0;
            if cache_active {
                let (cache_ok, cache_detail) = match &self.cache_sum {
                    None => (
                        false,
                        "cache events present but no cache_summary".to_string(),
                    ),
                    Some(sum) => {
                        let triples: [(&str, u64, u64); 6] = [
                            (
                                "completed vs hits + disk-served",
                                end.completed,
                                self.cache_hits + self.served,
                            ),
                            ("read hits", sum.read_hits, self.cache_read_hits),
                            ("read misses", sum.read_misses, self.cache_misses),
                            ("write absorbs", sum.write_absorbs, self.cache_write_absorbs),
                            ("flush batches", sum.flushes, self.flushes),
                            ("flushed chunks", sum.flushed_chunks, self.flushed_chunks),
                        ];
                        match triples.iter().find(|(_, a, b)| a != b) {
                            Some((what, a, b)) => (false, format!("{what}: {a} != {b}")),
                            None => (
                                true,
                                format!(
                                    "completed {} = {} hits + {} disk-served; \
                                     {} flushes destaged {} chunks",
                                    end.completed,
                                    self.cache_hits,
                                    self.served,
                                    self.flushes,
                                    self.flushed_chunks
                                ),
                            ),
                        }
                    }
                };
                checks.push(Check {
                    name: "cache-accounting",
                    passed: cache_ok,
                    detail: cache_detail,
                });
            }

            // 9. Migration grace (only for runs driven by a migration
            //    policy that emits `policy` events): no chunk started a
            //    new move inside the announced grace window of its last
            //    commit. Legacy streams have no policy events and skip
            //    this check entirely, like cache-accounting.
            if self.policy_events > 0 {
                checks.push(match &self.grace_violation {
                    Some(v) => Check {
                        name: "migration-grace",
                        passed: false,
                        detail: v.clone(),
                    },
                    None => Check {
                        name: "migration-grace",
                        passed: true,
                        detail: format!(
                            "{} policy rounds, {} chunk commits tracked",
                            self.policy_events,
                            self.chunk_commits.len()
                        ),
                    },
                });
            }
        }

        RunAudit {
            label: self.label,
            events: self.events,
            checks,
        }
    }
}

/// Audits a JSON-lines stream (one or more concatenated runs).
pub fn audit_bytes(bytes: &[u8]) -> Result<AuditOutcome, AuditError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| AuditError::Parse(0, format!("stream is not UTF-8: {e}")))?;
    let mut runs: Vec<RunAudit> = Vec::new();
    let mut acc: Option<RunAcc> = None;

    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let ev = str_field(line, n, "ev")?;
        if ev == "run_start" {
            if let Some(prev) = acc.take() {
                runs.push(prev.finish());
            }
            acc = Some(RunAcc::new(line, n)?);
            continue;
        }
        let run = acc
            .as_mut()
            .ok_or_else(|| AuditError::Parse(n, format!("{ev:?} before any run_start")))?;
        run.events += 1;
        let t = f64_field(line, n, "t")?;
        run.note_time(t, n);
        match ev {
            "served" => {
                let disk = u64_field(line, n, "disk")? as u32;
                let latency_us = f64_field(line, n, "latency_us")?;
                if let Some(&died) = run.dead.get(&disk) {
                    if t > died + 1e-9 && run.dead_serve_violation.is_none() {
                        run.dead_serve_violation = Some(format!(
                            "line {n}: disk {disk} served at t={t} but died at t={died}"
                        ));
                    }
                }
                run.served += 1;
                let idx = (t / run.bucket_s).floor() as u64;
                let b = run.buckets.entry(idx).or_insert((0, 0.0));
                b.0 += 1;
                b.1 += latency_us / 1e6;
            }
            "fault" => {
                if str_field(line, n, "kind")? == "disk_failure" {
                    let disk = u64_field(line, n, "disk")? as u32;
                    run.dead.entry(disk).or_insert(t);
                }
            }
            "speed" => run.speed_events += 1,
            "mig_start" => {
                let job = u64_field(line, n, "job")?;
                if run.active_jobs.insert(job, n as u64).is_some()
                    && run.mig_shape_violation.is_none()
                {
                    run.mig_shape_violation = Some(format!("line {n}: job {job} started twice"));
                }
                run.max_active = run.max_active.max(run.active_jobs.len());
                // Migration-grace: once a policy has announced a grace
                // period, no chunk may start a new move inside the grace
                // window of its last commit. Suspended after a disk failure
                // (rebuild re-copies are legitimate immediate moves).
                if run.policy_events > 0 && run.dead.is_empty() && run.grace_violation.is_none() {
                    let chunk = u64_field(line, n, "chunk")?;
                    if let Some(&(committed, grace)) = run.chunk_commits.get(&chunk) {
                        if t < committed + grace - 1e-9 {
                            run.grace_violation = Some(format!(
                                "line {n}: chunk {chunk} re-moved at t={t} only {:.1}s after \
                                 its commit at t={committed} (grace {grace}s)",
                                t - committed
                            ));
                        }
                    }
                }
            }
            "mig_moved" => {
                let job = u64_field(line, n, "job")?;
                run.end_job(job, n, "mig_moved");
                run.moved += 1;
                if str_field(line, n, "kind")? != "raw" {
                    run.moved_remap += 1;
                    let chunk = u64_field(line, n, "chunk")?;
                    run.chunk_commits.insert(chunk, (t, run.policy_grace_s));
                }
            }
            "mig_abort" => {
                let job = u64_field(line, n, "job")?;
                run.end_job(job, n, "mig_abort");
            }
            "mig_drop" => {
                let job = u64_field(line, n, "job")?;
                run.end_job(job, n, "mig_drop");
            }
            "power" => {
                let watts = f64_field(line, n, "watts")?;
                run.power_sum_j += watts * run.sample_s;
                run.power_samples += 1;
                run.last_power_t = t;
            }
            "disk" => {
                for (i, name) in COMPONENTS.iter().enumerate() {
                    run.disk_energy_j[i] += f64_field(line, n, name)?;
                }
                run.disk_transitions += u64_field(line, n, "transitions")?;
                run.disk_summaries += 1;
            }
            "run_end" => {
                let mut energy_j = [0.0; 6];
                for (i, name) in COMPONENTS.iter().enumerate() {
                    energy_j[i] = f64_field(line, n, name)?;
                }
                let latency_hist = u64_array(line, n, "latency_hist")?;
                let latency_hist_total: u64 =
                    latency_hist.iter().sum::<u64>() + u64_field(line, n, "latency_overflow")?;
                run.end = Some(EndTotals {
                    total_j: f64_field(line, n, "total_j")?,
                    energy_j,
                    completed: u64_field(line, n, "completed")?,
                    transitions: u64_field(line, n, "transitions")?,
                    violation: f64_field(line, n, "violation")?,
                    latency_hist_total,
                    moved: u64_field(line, n, "moved")?,
                    remap_version: u64_field(line, n, "remap_version")?,
                    dropped: u64_field(line, n, "dropped")?,
                });
            }
            "cache_hit" => {
                // A DRAM-served request: counts toward completions and the
                // violation refit, but not toward disk-served tallies.
                let latency_us = f64_field(line, n, "latency_us")?;
                run.cache_hits += 1;
                match str_field(line, n, "op")? {
                    "read" => run.cache_read_hits += 1,
                    "write" => run.cache_write_absorbs += 1,
                    other => {
                        return Err(AuditError::Parse(n, format!("unknown cache op {other:?}")));
                    }
                }
                let idx = (t / run.bucket_s).floor() as u64;
                let b = run.buckets.entry(idx).or_insert((0, 0.0));
                b.0 += 1;
                b.1 += latency_us / 1e6;
            }
            "cache_miss" => run.cache_misses += 1,
            "flush" => {
                run.flushes += 1;
                run.flushed_chunks += u64_field(line, n, "chunks")?;
            }
            "cache_summary" => {
                run.cache_sum = Some(CacheTotals {
                    read_hits: u64_field(line, n, "read_hits")?,
                    read_misses: u64_field(line, n, "read_misses")?,
                    write_absorbs: u64_field(line, n, "write_absorbs")?,
                    flushes: u64_field(line, n, "flushes")?,
                    flushed_chunks: u64_field(line, n, "flushed_chunks")?,
                });
            }
            "policy" => {
                run.policy_events += 1;
                run.policy_grace_s = f64_field(line, n, "grace_s")?;
            }
            "epoch" | "boost" => {}
            other => {
                return Err(AuditError::Parse(
                    n,
                    format!("unknown event kind {other:?}"),
                ));
            }
        }
    }
    if let Some(prev) = acc.take() {
        runs.push(prev.finish());
    }
    if runs.is_empty() {
        return Err(AuditError::Parse(0, "stream contains no runs".to_string()));
    }
    Ok(AuditOutcome { runs })
}

/// Audits a *fleet* stream: the arbiter/placement event log the fleet
/// driver records alongside the per-array streams (tags `fleet_epoch`,
/// `cap_grant`, `tenant_move`, `fleet_end`). Fleet events are rejected by
/// [`audit_bytes`] — they never appear inside a per-array
/// `run_start`…`run_end` segment — so the fleet stream gets its own
/// replay with fleet-level invariants:
///
/// 1. **stream shape** — time-ordered, at least one `fleet_epoch`,
///    exactly one `fleet_end`, and it is the last line;
/// 2. **grant conservation** — at every boundary with a finite budget,
///    the sum of granted caps stays within the budget;
/// 3. **budget conservation** — under a finite budget, either total
///    fleet energy fits inside the integrated budget or the overage was
///    detected and reported as cap-violation time (never silent);
/// 4. **request conservation** — the placement map routed every request
///    of the shared trace, and completions never exceed what was routed;
/// 5. **move accounting** — the trailer's move count matches the
///    replayed `tenant_move` events.
pub fn audit_fleet_bytes(bytes: &[u8]) -> Result<RunAudit, AuditError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| AuditError::Parse(0, format!("stream is not UTF-8: {e}")))?;

    struct Trailer {
        total_j: f64,
        budget_j: Option<f64>,
        cap_violation_s: f64,
        completed: u64,
        incomplete: u64,
        total_requests: u64,
        routed_requests: u64,
        tenant_moves: u64,
    }

    let mut events = 0usize;
    let mut last_t = 0.0f64;
    let mut order_violation: Option<String> = None;
    let mut epochs = 0u64;
    // The open boundary's finite budget and its running grant sum.
    let mut open_budget: Option<f64> = None;
    let mut grant_sum = 0.0f64;
    let mut grant_violation: Option<String> = None;
    let mut moves = 0u64;
    let mut trailer: Option<Trailer> = None;
    let mut after_trailer = false;

    let close_epoch = |budget: &mut Option<f64>, sum: &mut f64, viol: &mut Option<String>| {
        if let Some(b) = budget.take() {
            if *sum > b * (1.0 + 1e-9) + 1e-6 && viol.is_none() {
                *viol = Some(format!("granted {sum} W of budget {b} W"));
            }
        }
        *sum = 0.0;
    };

    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if after_trailer {
            return Err(AuditError::Parse(n, "events after fleet_end".to_string()));
        }
        events += 1;
        let ev = str_field(line, n, "ev")?;
        let t = f64_field(line, n, "t")?;
        if t < last_t - 1e-9 && order_violation.is_none() {
            order_violation = Some(format!(
                "line {n}: t={t} after t={last_t} — stream not time-ordered"
            ));
        }
        last_t = last_t.max(t);
        match ev {
            "fleet_epoch" => {
                close_epoch(&mut open_budget, &mut grant_sum, &mut grant_violation);
                epochs += 1;
                open_budget = opt_f64_field(line, n, "budget_w")?;
            }
            "cap_grant" => {
                grant_sum += f64_field(line, n, "cap_w")?;
            }
            "tenant_move" => moves += 1,
            "fleet_end" => {
                close_epoch(&mut open_budget, &mut grant_sum, &mut grant_violation);
                trailer = Some(Trailer {
                    total_j: f64_field(line, n, "total_j")?,
                    budget_j: opt_f64_field(line, n, "budget_j")?,
                    cap_violation_s: f64_field(line, n, "cap_violation_s")?,
                    completed: u64_field(line, n, "completed")?,
                    incomplete: u64_field(line, n, "incomplete")?,
                    total_requests: u64_field(line, n, "total_requests")?,
                    routed_requests: u64_field(line, n, "routed_requests")?,
                    tenant_moves: u64_field(line, n, "tenant_moves")?,
                });
                after_trailer = true;
            }
            other => {
                return Err(AuditError::Parse(
                    n,
                    format!("unknown fleet event kind {other:?}"),
                ));
            }
        }
    }

    let mut checks = Vec::new();
    let (shape_ok, shape_detail) = match (&trailer, &order_violation) {
        (None, _) => (false, "missing fleet_end trailer".to_string()),
        (Some(_), Some(v)) => (false, v.clone()),
        (Some(_), None) if epochs == 0 => (false, "no fleet_epoch events".to_string()),
        (Some(_), None) => (
            true,
            format!("{events} events over {epochs} fleet epochs, time-ordered"),
        ),
    };
    checks.push(Check {
        name: "fleet-stream-shape",
        passed: shape_ok,
        detail: shape_detail,
    });

    if let Some(end) = &trailer {
        checks.push(match &grant_violation {
            Some(v) => Check {
                name: "grant-conservation",
                passed: false,
                detail: v.clone(),
            },
            None => Check {
                name: "grant-conservation",
                passed: true,
                detail: format!("grants fit the budget at all {epochs} boundaries"),
            },
        });

        let (budget_ok, budget_detail) = match end.budget_j {
            None => (true, "unlimited budget".to_string()),
            Some(bj) => {
                let within = end.total_j <= bj * (1.0 + 1e-9) + 1e-6;
                if within {
                    (
                        true,
                        format!("fleet used {:.1} J of {:.1} J budget", end.total_j, bj),
                    )
                } else if end.cap_violation_s > 0.0 {
                    (
                        true,
                        format!(
                            "overspend {:.1} J > {:.1} J reported as {:.0} s of cap violation",
                            end.total_j, bj, end.cap_violation_s
                        ),
                    )
                } else {
                    (
                        false,
                        format!(
                            "fleet used {:.1} J of {:.1} J budget with no violation reported",
                            end.total_j, bj
                        ),
                    )
                }
            }
        };
        checks.push(Check {
            name: "budget-conservation",
            passed: budget_ok,
            detail: budget_detail,
        });

        let routed_ok = end.routed_requests == end.total_requests
            && end.completed + end.incomplete <= end.routed_requests;
        checks.push(Check {
            name: "request-conservation",
            passed: routed_ok,
            detail: format!(
                "routed {} of {} trace requests; {} completed + {} in flight",
                end.routed_requests, end.total_requests, end.completed, end.incomplete
            ),
        });

        checks.push(Check {
            name: "move-accounting",
            passed: moves == end.tenant_moves,
            detail: format!(
                "{} tenant_move events vs trailer {}",
                moves, end.tenant_moves
            ),
        });
    }

    Ok(RunAudit {
        label: "fleet".to_string(),
        events,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_stream() -> String {
        let disks = [
            "{\"ev\":\"disk\",\"t\":100.0,\"disk\":0,\"idle_spin\":40.0,\"seek\":5.0,\"transfer\":5.0,\"transition\":0.0,\"standby\":0.0,\"migration\":0.0,\"transitions\":0,\"failed_at_s\":null}",
            "{\"ev\":\"disk\",\"t\":100.0,\"disk\":1,\"idle_spin\":40.0,\"seek\":5.0,\"transfer\":5.0,\"transition\":0.0,\"standby\":0.0,\"migration\":0.0,\"transitions\":0,\"failed_at_s\":null}",
        ];
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n",
            "{\"ev\":\"run_start\",\"t\":0.0,\"label\":\"test\",\"disks\":2,\"levels\":6,\"horizon_s\":100.0,\"inflight\":2,\"sample_s\":50.0,\"bucket_s\":50.0,\"goal_s\":0.01,\"warmup_s\":0.0,\"seed\":1}",
            "{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
            "{\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}",
            "{\"ev\":\"power\",\"t\":100.0,\"watts\":1.0}",
            disks.join("\n"),
            "{\"ev\":\"run_end\",\"t\":100.0,\"total_j\":100.0,\"idle_spin\":80.0,\"seek\":10.0,\"transfer\":10.0,\"transition\":0.0,\"standby\":0.0,\"migration\":0.0,\"completed\":1,\"incomplete\":0,\"transitions\":0,\"mean_response_s\":0.005,\"violation\":0.0,\"latency_hist\":[0,0,1],\"latency_overflow\":0,\"queue_hist\":[2],\"queue_overflow\":0,\"moved\":0,\"remap_version\":0,\"dropped\":0}",
        )
    }

    #[test]
    fn minimal_consistent_stream_passes_all_checks() {
        let out = audit_bytes(minimal_stream().as_bytes()).expect("parse");
        assert_eq!(out.runs.len(), 1);
        let run = &out.runs[0];
        for c in &run.checks {
            assert!(c.passed, "{} failed: {}", c.name, c.detail);
        }
        assert!(out.passed());
    }

    #[test]
    fn dead_disk_serving_is_caught() {
        let s = minimal_stream().replace(
            "{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
            "{\"ev\":\"fault\",\"t\":5.0,\"disk\":0,\"kind\":\"disk_failure\"}\n{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
        );
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "dead-disk-serve")
            .unwrap();
        assert!(!check.passed, "expected dead-disk violation");
    }

    #[test]
    fn wrong_energy_total_is_caught() {
        let s = minimal_stream().replace("\"total_j\":100.0", "\"total_j\":150.0");
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "energy-conservation")
            .unwrap();
        assert!(!check.passed);
        assert!(!out.passed());
    }

    #[test]
    fn wrong_violation_fraction_is_caught() {
        // One bucket whose mean (5 ms) is below the 10 ms goal: reported
        // violation must be 0, so claiming 1.0 fails the refit.
        let s = minimal_stream().replace("\"violation\":0.0", "\"violation\":1.0");
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "violation-refit")
            .unwrap();
        assert!(!check.passed);
    }

    #[test]
    fn legacy_streams_skip_the_grace_check() {
        let out = audit_bytes(minimal_stream().as_bytes()).expect("parse");
        assert!(
            !out.runs[0]
                .checks
                .iter()
                .any(|c| c.name == "migration-grace"),
            "no policy events -> no migration-grace check"
        );
    }

    #[test]
    fn grace_window_restart_is_caught() {
        let extra = "{\"ev\":\"policy\",\"t\":15.0,\"policy\":\"lfu\",\"moves\":1,\"deferred_grace\":0,\"deferred_inflight\":0,\"skipped_threshold\":0,\"grace_s\":100.0,\"sleepers\":0}\n\
                     {\"ev\":\"mig_start\",\"t\":20.0,\"job\":1,\"chunk\":7,\"src\":0,\"dst\":1}\n\
                     {\"ev\":\"mig_moved\",\"t\":30.0,\"job\":1,\"chunk\":7,\"src\":0,\"dst\":1,\"bytes\":1048576,\"kind\":\"relocate\"}\n\
                     {\"ev\":\"mig_start\",\"t\":50.0,\"job\":2,\"chunk\":7,\"src\":1,\"dst\":0}\n\
                     {\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}";
        let s = minimal_stream().replace("{\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}", extra);
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "migration-grace")
            .unwrap();
        assert!(!check.passed, "re-move at t=50 inside grace must fail");
        assert!(check.detail.contains("chunk 7"), "{}", check.detail);
    }

    #[test]
    fn grace_respected_restart_passes() {
        let extra = "{\"ev\":\"policy\",\"t\":15.0,\"policy\":\"lfu\",\"moves\":1,\"deferred_grace\":0,\"deferred_inflight\":0,\"skipped_threshold\":0,\"grace_s\":60.0,\"sleepers\":0}\n\
                     {\"ev\":\"mig_start\",\"t\":20.0,\"job\":1,\"chunk\":7,\"src\":0,\"dst\":1}\n\
                     {\"ev\":\"mig_moved\",\"t\":30.0,\"job\":1,\"chunk\":7,\"src\":0,\"dst\":1,\"bytes\":1048576,\"kind\":\"relocate\"}\n\
                     {\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}\n\
                     {\"ev\":\"mig_start\",\"t\":95.0,\"job\":2,\"chunk\":7,\"src\":1,\"dst\":0}";
        let s = minimal_stream().replace("{\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}", extra);
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "migration-grace")
            .unwrap();
        assert!(check.passed, "{}", check.detail);
    }

    #[test]
    fn inflight_cap_violation_is_caught() {
        let extra = "{\"ev\":\"mig_start\",\"t\":20.0,\"job\":1,\"chunk\":1,\"src\":0,\"dst\":1}\n\
                     {\"ev\":\"mig_start\",\"t\":21.0,\"job\":2,\"chunk\":2,\"src\":0,\"dst\":1}\n\
                     {\"ev\":\"mig_start\",\"t\":22.0,\"job\":3,\"chunk\":3,\"src\":0,\"dst\":1}\n\
                     {\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}";
        let s = minimal_stream().replace("{\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}", extra);
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "migration-inflight")
            .unwrap();
        assert!(!check.passed, "3 concurrent jobs exceed cap 2");
    }

    #[test]
    fn out_of_order_stream_fails_shape() {
        let s = minimal_stream().replace(
            "{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
            "{\"ev\":\"power\",\"t\":60.0,\"watts\":1.0}\n{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
        );
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "stream-shape")
            .unwrap();
        assert!(!check.passed);
    }

    /// The minimal stream with one DRAM hit, one miss, a flush batch, and
    /// the matching summary/trailer totals (2 completions = 1 hit + 1
    /// disk-served).
    fn cache_stream() -> String {
        minimal_stream()
            .replace(
                "{\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}",
                "{\"ev\":\"cache_miss\",\"t\":9.0,\"chunks\":1}\n\
                 {\"ev\":\"served\",\"t\":10.0,\"latency_us\":5000.0,\"disk\":0,\"tier\":5}\n\
                 {\"ev\":\"cache_hit\",\"t\":20.0,\"latency_us\":200.0,\"op\":\"read\"}\n\
                 {\"ev\":\"flush\",\"t\":30.0,\"chunks\":3,\"disks\":2,\"forced\":false}",
            )
            .replace(
                "{\"ev\":\"disk\",\"t\":100.0,\"disk\":0,",
                "{\"ev\":\"cache_summary\",\"t\":100.0,\"read_hits\":1,\"read_misses\":1,\
                 \"write_absorbs\":0,\"writebacks\":0,\"flushes\":1,\"flushed_chunks\":3}\n\
                 {\"ev\":\"disk\",\"t\":100.0,\"disk\":0,",
            )
            .replace("\"completed\":1", "\"completed\":2")
            .replace("\"latency_hist\":[0,0,1]", "\"latency_hist\":[1,0,1]")
    }

    #[test]
    fn cache_stream_passes_cache_accounting() {
        let out = audit_bytes(cache_stream().as_bytes()).expect("parse");
        let run = &out.runs[0];
        for c in &run.checks {
            assert!(c.passed, "{} failed: {}", c.name, c.detail);
        }
        assert!(
            run.checks.iter().any(|c| c.name == "cache-accounting"),
            "cache runs must gain the cache-accounting check"
        );
    }

    #[test]
    fn cacheless_stream_has_no_cache_check() {
        let out = audit_bytes(minimal_stream().as_bytes()).expect("parse");
        assert!(out.runs[0]
            .checks
            .iter()
            .all(|c| c.name != "cache-accounting"));
    }

    #[test]
    fn hit_not_counted_as_completion_is_caught() {
        // Trailer claims only the disk-served request completed: the
        // served = hits + disk-served invariant must flag it.
        let s = cache_stream().replace("\"completed\":2", "\"completed\":1");
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "cache-accounting")
            .unwrap();
        assert!(!check.passed);
        assert!(check.detail.contains("completed vs hits + disk-served"));
    }

    #[test]
    fn flush_count_mismatch_is_caught() {
        let s = cache_stream().replace("\"flushed_chunks\":3", "\"flushed_chunks\":4");
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "cache-accounting")
            .unwrap();
        assert!(!check.passed, "summary/replay flush totals must reconcile");
    }

    #[test]
    fn cache_events_without_summary_fail() {
        let s = cache_stream().replace(
            "{\"ev\":\"cache_summary\",\"t\":100.0,\"read_hits\":1,\"read_misses\":1,\
             \"write_absorbs\":0,\"writebacks\":0,\"flushes\":1,\"flushed_chunks\":3}",
            "{\"ev\":\"power\",\"t\":100.0,\"watts\":0.0}",
        );
        // The replaced power line breaks power integration too; only the
        // cache check matters here.
        let out = audit_bytes(s.as_bytes()).expect("parse");
        let check = out.runs[0]
            .checks
            .iter()
            .find(|c| c.name == "cache-accounting")
            .unwrap();
        assert!(!check.passed);
    }

    #[test]
    fn multi_run_streams_audit_independently() {
        let two = format!("{}{}", minimal_stream(), minimal_stream());
        let out = audit_bytes(two.as_bytes()).expect("parse");
        assert_eq!(out.runs.len(), 2);
        assert!(out.passed());
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(audit_bytes(b"not json\n").is_err());
        assert!(audit_bytes(b"").is_err());
    }

    /// A two-epoch, two-array fleet stream whose grants, budget, and
    /// request totals all reconcile.
    fn fleet_stream() -> String {
        [
            "{\"ev\":\"fleet_epoch\",\"t\":0.0,\"epoch\":0,\"arrays\":2,\"budget_w\":100.0,\"demand_w\":0.0}",
            "{\"ev\":\"cap_grant\",\"t\":0.0,\"array\":0,\"cap_w\":50.0,\"observed_w\":0.0}",
            "{\"ev\":\"cap_grant\",\"t\":0.0,\"array\":1,\"cap_w\":50.0,\"observed_w\":0.0}",
            "{\"ev\":\"fleet_epoch\",\"t\":60.0,\"epoch\":1,\"arrays\":2,\"budget_w\":100.0,\"demand_w\":80.0}",
            "{\"ev\":\"cap_grant\",\"t\":60.0,\"array\":0,\"cap_w\":62.5,\"observed_w\":50.0}",
            "{\"ev\":\"cap_grant\",\"t\":60.0,\"array\":1,\"cap_w\":37.5,\"observed_w\":30.0}",
            "{\"ev\":\"tenant_move\",\"t\":60.0,\"tenant\":3,\"from\":0,\"to\":1}",
            "{\"ev\":\"fleet_end\",\"t\":120.0,\"total_j\":9000.0,\"budget_j\":12000.0,\"cap_violation_s\":0.0,\"completed\":90,\"incomplete\":10,\"total_requests\":100,\"routed_requests\":100,\"tenant_moves\":1}",
        ]
        .map(|l| format!("{l}\n"))
        .concat()
    }

    #[test]
    fn consistent_fleet_stream_passes_all_checks() {
        let run = audit_fleet_bytes(fleet_stream().as_bytes()).expect("parse");
        for c in &run.checks {
            assert!(c.passed, "{} failed: {}", c.name, c.detail);
        }
        assert!(run.passed());
    }

    #[test]
    fn overspent_grants_are_caught() {
        let s = fleet_stream().replace("\"cap_w\":62.5", "\"cap_w\":80.0");
        let run = audit_fleet_bytes(s.as_bytes()).expect("parse");
        let check = run
            .checks
            .iter()
            .find(|c| c.name == "grant-conservation")
            .unwrap();
        assert!(!check.passed, "80 + 37.5 W exceeds the 100 W budget");
    }

    #[test]
    fn silent_budget_overspend_is_caught() {
        let s = fleet_stream().replace("\"total_j\":9000.0", "\"total_j\":13000.0");
        let run = audit_fleet_bytes(s.as_bytes()).expect("parse");
        let check = run
            .checks
            .iter()
            .find(|c| c.name == "budget-conservation")
            .unwrap();
        assert!(!check.passed, "overspend with zero violation time");
        // The same overspend *with* violation time reported is legal
        // (caps are advisory-soft; the audit demands honesty, not magic).
        let honest = s.replace("\"cap_violation_s\":0.0", "\"cap_violation_s\":60.0");
        let run = audit_fleet_bytes(honest.as_bytes()).expect("parse");
        assert!(run.passed(), "reported overspend passes");
    }

    #[test]
    fn unlimited_budget_fleet_passes() {
        let s = fleet_stream()
            .replace("\"budget_w\":100.0", "\"budget_w\":null")
            .replace("\"budget_j\":12000.0", "\"budget_j\":null");
        let run = audit_fleet_bytes(s.as_bytes()).expect("parse");
        assert!(run.passed());
    }

    #[test]
    fn lost_requests_are_caught() {
        let s = fleet_stream().replace("\"routed_requests\":100", "\"routed_requests\":99");
        let run = audit_fleet_bytes(s.as_bytes()).expect("parse");
        let check = run
            .checks
            .iter()
            .find(|c| c.name == "request-conservation")
            .unwrap();
        assert!(!check.passed, "a dropped request must fail conservation");
    }

    #[test]
    fn move_count_mismatch_is_caught() {
        let s = fleet_stream().replace("\"tenant_moves\":1", "\"tenant_moves\":2");
        let run = audit_fleet_bytes(s.as_bytes()).expect("parse");
        let check = run
            .checks
            .iter()
            .find(|c| c.name == "move-accounting")
            .unwrap();
        assert!(!check.passed);
    }

    #[test]
    fn truncated_fleet_stream_fails_shape() {
        let full = fleet_stream();
        let cut = full.rsplit_once("{\"ev\":\"fleet_end\"").unwrap().0;
        let run = audit_fleet_bytes(cut.as_bytes()).expect("parse");
        let check = run
            .checks
            .iter()
            .find(|c| c.name == "fleet-stream-shape")
            .unwrap();
        assert!(!check.passed, "missing trailer must fail");
        // And trailing junk after the trailer is a parse error outright.
        let extra = format!("{full}{}", fleet_stream().lines().next().unwrap());
        assert!(audit_fleet_bytes(extra.as_bytes()).is_err());
    }

    #[test]
    fn fleet_events_are_rejected_by_the_array_auditor() {
        let s = minimal_stream().replace(
            "{\"ev\":\"power\",\"t\":50.0,\"watts\":1.0}",
            "{\"ev\":\"cap_grant\",\"t\":50.0,\"array\":0,\"cap_w\":50.0,\"observed_w\":0.0}",
        );
        assert!(audit_bytes(s.as_bytes()).is_err());
    }
}
