//! Ring-buffered event storage.

use crate::Event;
use std::collections::VecDeque;
use std::io::{self, Write};

/// A bounded in-memory event buffer.
///
/// When the buffer is full the *oldest* event is discarded and the dropped
/// counter bumps; the auditor treats any drop as an incomplete stream (the
/// header is the first casualty), so capacity should be sized generously
/// relative to the run — the default in
/// [`TelemetryConfig`](crate::TelemetryConfig) covers a full `--quick`
/// horizon with room to spare.
#[derive(Debug)]
pub struct EventSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventSink {
    /// Creates a sink holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventSink: zero capacity");
        EventSink {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Serializes all buffered events as JSON-lines.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for ev in &self.buf {
            ev.write_jsonl(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(t: f64) -> Event {
        Event::PowerSample {
            time_s: t,
            watts: 100.0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut s = EventSink::new(2);
        s.push(power(1.0));
        s.push(power(2.0));
        s.push(power(3.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 1);
        let times: Vec<f64> = s.iter().map(Event::time_s).collect();
        assert_eq!(times, vec![2.0, 3.0]);
    }

    #[test]
    fn serializes_in_order() {
        let mut s = EventSink::new(8);
        s.push(power(1.0));
        s.push(power(2.0));
        let mut buf = Vec::new();
        s.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("\"t\":1.0"));
    }
}
