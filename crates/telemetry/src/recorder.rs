//! The per-run recording handle.

use crate::{Event, EventSink};
use simkit::FixedHistogram;

/// Latency histogram layout: 2 ms buckets spanning 0–200 ms.
const LATENCY_BUCKET_US: f64 = 2_000.0;
const LATENCY_BUCKETS: usize = 100;
/// Queue-depth histogram layout: unit buckets spanning 0–63.
const QUEUE_BUCKET: f64 = 1.0;
const QUEUE_BUCKETS: usize = 64;

/// How a run's telemetry is captured.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Deterministic run label embedded in the stream header; streams are
    /// later flushed sorted, so the label must uniquely identify the run.
    pub label: String,
    /// Response-time goal used for goal-violation accounting
    /// (`f64::MAX` for unmanaged runs — nothing ever violates).
    pub goal_s: f64,
    /// Warm-up cutoff: series buckets starting before this are excluded
    /// from the violation fraction, mirroring the T4 convention.
    pub warmup_s: f64,
    /// Ring-buffer capacity in events.
    pub capacity: usize,
}

impl TelemetryConfig {
    /// A config with the default capacity, no goal, and no warm-up.
    pub fn new(label: impl Into<String>) -> Self {
        TelemetryConfig {
            label: label.into(),
            goal_s: f64::MAX,
            warmup_s: 0.0,
            capacity: 4_000_000,
        }
    }

    /// Sets the goal and warm-up used for violation accounting.
    pub fn with_goal(mut self, goal_s: f64, warmup_s: f64) -> Self {
        self.goal_s = goal_s;
        self.warmup_s = warmup_s;
        self
    }
}

/// Monotonic per-run event counters (single-threaded, so plain integers —
/// "lock-cheap" is literal here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total events recorded (pre-eviction).
    pub events: u64,
    /// `RequestServed` events.
    pub served: u64,
    /// `SpeedTransition` events.
    pub transitions: u64,
    /// `MigrationStarted` events.
    pub migrations_started: u64,
    /// `MigrationMoved` events.
    pub migrations_moved: u64,
    /// `MigrationAborted` events.
    pub migrations_aborted: u64,
    /// `MigrationDropped` events.
    pub migrations_dropped: u64,
    /// `GuardBoost` entries (exits not counted).
    pub boosts: u64,
    /// `FaultInjected` events.
    pub faults: u64,
    /// `EpochPlanned` events.
    pub epochs: u64,
    /// `PowerSample` events.
    pub power_samples: u64,
    /// `CacheHit` events (DRAM-served requests: read hits + absorbed
    /// writes).
    pub cache_hits: u64,
    /// `CacheMiss` events.
    pub cache_misses: u64,
    /// `FlushBatch` events.
    pub flushes: u64,
}

/// A serialized per-run stream plus the label it sorts under.
#[derive(Debug, Clone)]
pub struct RunStream {
    /// The run's deterministic label (also in the stream's header line).
    pub label: String,
    /// The JSON-lines bytes of the full stream.
    pub bytes: Vec<u8>,
}

struct Inner {
    cfg: TelemetryConfig,
    sink: EventSink,
    counters: Counters,
    latency_us: FixedHistogram,
    queue_depth: FixedHistogram,
}

/// The recording handle threaded through the simulation.
///
/// A disabled recorder is a single `None` — every emit path is one branch
/// and never constructs an event (use [`Recorder::emit_with`] on paths
/// where building the event itself would allocate), so the hot path is
/// allocation-free when telemetry is off.
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(i) => write!(
                f,
                "Recorder({:?}, {} events, {} dropped)",
                i.cfg.label,
                i.sink.len(),
                i.sink.dropped()
            ),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// The no-op recorder.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder capturing into a fresh ring buffer.
    pub fn new(cfg: TelemetryConfig) -> Recorder {
        let capacity = cfg.capacity;
        Recorder {
            inner: Some(Box::new(Inner {
                cfg,
                sink: EventSink::new(capacity),
                counters: Counters::default(),
                latency_us: FixedHistogram::new(LATENCY_BUCKET_US, LATENCY_BUCKETS),
                queue_depth: FixedHistogram::new(QUEUE_BUCKET, QUEUE_BUCKETS),
            })),
        }
    }

    /// True when events are being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The capture config, when enabled.
    pub fn config(&self) -> Option<&TelemetryConfig> {
        self.inner.as_deref().map(|i| &i.cfg)
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, ev: Event) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.record(ev);
        }
    }

    /// Records the event built by `f`, constructing it only when enabled.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> Event) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.record(f());
        }
    }

    /// Samples a queue depth into the fixed histogram (no-op when
    /// disabled).
    #[inline]
    pub fn record_queue_depth(&mut self, depth: f64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.queue_depth.record(depth);
        }
    }

    /// Counter snapshot (zeros when disabled).
    pub fn counters(&self) -> Counters {
        self.inner
            .as_deref()
            .map(|i| i.counters)
            .unwrap_or_default()
    }

    /// The latency histogram, when enabled.
    pub fn latency_hist(&self) -> Option<&FixedHistogram> {
        self.inner.as_deref().map(|i| &i.latency_us)
    }

    /// The queue-depth histogram, when enabled.
    pub fn queue_hist(&self) -> Option<&FixedHistogram> {
        self.inner.as_deref().map(|i| &i.queue_depth)
    }

    /// Events evicted from the ring so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.inner.as_deref().map(|i| i.sink.dropped()).unwrap_or(0)
    }

    /// Serializes the captured stream, consuming the recorder. Returns
    /// `None` when disabled.
    pub fn into_stream(self) -> Option<RunStream> {
        let inner = self.inner?;
        let mut bytes = Vec::with_capacity(inner.sink.len() * 96);
        inner
            .sink
            .write_jsonl(&mut bytes)
            .expect("serialize to Vec cannot fail");
        Some(RunStream {
            label: inner.cfg.label,
            bytes,
        })
    }
}

impl Inner {
    fn record(&mut self, ev: Event) {
        self.counters.events += 1;
        match &ev {
            Event::RequestServed { latency_us, .. } => {
                self.counters.served += 1;
                self.latency_us.record(*latency_us);
            }
            Event::SpeedTransition { .. } => self.counters.transitions += 1,
            Event::MigrationStarted { .. } => self.counters.migrations_started += 1,
            Event::MigrationMoved { .. } => self.counters.migrations_moved += 1,
            Event::MigrationAborted { .. } => self.counters.migrations_aborted += 1,
            Event::MigrationDropped { .. } => self.counters.migrations_dropped += 1,
            Event::GuardBoost { entered, .. } => {
                if *entered {
                    self.counters.boosts += 1;
                }
            }
            Event::FaultInjected { .. } => self.counters.faults += 1,
            Event::EpochPlanned { .. } => self.counters.epochs += 1,
            Event::PowerSample { .. } => self.counters.power_samples += 1,
            Event::CacheHit { latency_us, .. } => {
                // A DRAM-served request still counts in the latency
                // histogram: the run_end hist covers every completion.
                self.counters.cache_hits += 1;
                self.latency_us.record(*latency_us);
            }
            Event::CacheMiss { .. } => self.counters.cache_misses += 1,
            Event::FlushBatch { .. } => self.counters.flushes += 1,
            Event::RunStart { .. }
            | Event::PolicyDecision { .. }
            | Event::DiskSummary { .. }
            | Event::CacheSummary { .. }
            | Event::RunSummary { .. }
            | Event::FleetEpoch { .. }
            | Event::CapGrant { .. }
            | Event::TenantMove { .. }
            | Event::FleetSummary { .. } => {}
        }
        self.sink.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = Recorder::disabled();
        r.emit(Event::PowerSample {
            time_s: 1.0,
            watts: 10.0,
        });
        r.record_queue_depth(3.0);
        assert!(!r.is_enabled());
        assert_eq!(r.counters(), Counters::default());
        assert!(r.into_stream().is_none());
    }

    #[test]
    fn emit_with_skips_construction_when_disabled() {
        let mut r = Recorder::disabled();
        let mut built = false;
        r.emit_with(|| {
            built = true;
            Event::PowerSample {
                time_s: 0.0,
                watts: 0.0,
            }
        });
        assert!(!built);
    }

    #[test]
    fn counters_and_histograms_track_events() {
        let mut r = Recorder::new(TelemetryConfig::new("test"));
        r.emit(Event::RequestServed {
            time_s: 1.0,
            latency_us: 4500.0,
            disk: 0,
            tier: 5,
        });
        r.emit(Event::GuardBoost {
            time_s: 2.0,
            entered: true,
            reason: crate::BoostReason::Latency,
        });
        r.emit(Event::GuardBoost {
            time_s: 3.0,
            entered: false,
            reason: crate::BoostReason::Latency,
        });
        r.record_queue_depth(2.0);
        let c = r.counters();
        assert_eq!((c.events, c.served, c.boosts), (3, 1, 1));
        assert_eq!(r.latency_hist().unwrap().count(), 1);
        assert_eq!(r.latency_hist().unwrap().counts()[2], 1); // 4500 us -> bucket 2
        assert_eq!(r.queue_hist().unwrap().counts()[2], 1);
        let stream = r.into_stream().unwrap();
        assert_eq!(stream.label, "test");
        assert_eq!(
            std::str::from_utf8(&stream.bytes).unwrap().lines().count(),
            3
        );
    }
}
