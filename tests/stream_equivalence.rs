//! Property: the streaming workload engine is observationally identical
//! to the materialised one. Feeding a simulation from
//! [`WorkloadSpec::stream`] (a lazy [`workload::TraceSource`]) must
//! produce bit-identical [`RunReport`] numerics and byte-identical
//! telemetry streams to feeding it the materialised
//! [`WorkloadSpec::generate`] trace — across all six headline policies,
//! both arrival models, and a whole fleet run — while buffering at most
//! one request, so week-long horizons run in O(1) trace memory.
//!
//! Why this must hold: `SpecStream` replays the batch generator's RNG
//! draw order exactly (including the two-pass arrivals-clone trick for
//! diurnal thinning), so the request sequences are equal; and the sim's
//! `Feed` abstraction pulls one request ahead at the exact code point
//! the sliced path reads the next trace element, so event-queue keys —
//! and therefore FIFO tie-breaking — are unchanged.

use array::{run_policy, run_policy_streamed, ArrayConfig, RunOptions, RunReport, Simulation};
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use hibernator::{Hibernator, HibernatorConfig};
use parallel::Pool;
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::{SimDuration, SimTime};
use std::sync::atomic::Ordering;
use telemetry::TelemetryConfig;
use workload::{collect_trace, Counted, WorkloadSpec};

const DURATION_S: f64 = 900.0;

fn spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 25.0);
    spec.extents = 1024;
    spec.zipf_theta = 1.0;
    spec
}

fn config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    c
}

/// A 6-disk config sized to a spec's footprint (for specs whose default
/// extents exceed the 2 GiB test volume).
fn config_for(spec: &WorkloadSpec) -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(spec.footprint_sectors() * 512);
    c.disks = 6;
    c
}

fn opts(label: &str) -> RunOptions {
    let mut o = RunOptions::for_horizon(DURATION_S);
    o.telemetry = Some(TelemetryConfig::new(label).with_goal(0.02, 90.0));
    o
}

fn hibernator() -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(0.02);
    cfg.epoch = SimDuration::from_secs(180.0);
    cfg.heat_tau = SimDuration::from_secs(180.0);
    Hibernator::new(cfg)
}

/// Everything numeric a run reports, bit-exact.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    vec![
        r.completed,
        r.incomplete,
        r.events_processed,
        r.transitions,
        r.energy.total_joules().to_bits(),
        r.response.mean().to_bits(),
        r.response.raw_second_moment().to_bits(),
        r.service.mean().to_bits(),
        r.fg_sectors,
        r.migration.committed,
        r.migration.aborted,
        r.migration.rebuilt,
        r.migration.raw_writes,
        r.faults.lost_requests,
        r.faults.degraded_redirects,
        r.faults.rebuild_chunks,
        r.faults.retries,
        r.faults.transient_errors,
    ]
}

/// Runs the same (spec, seed, policy) both ways — materialised trace vs
/// streaming source — and asserts reports and telemetry agree exactly.
fn assert_stream_equivalent<P: array::PowerPolicy + Send>(
    label: &str,
    spec: &WorkloadSpec,
    seed: u64,
    config: ArrayConfig,
    opts: RunOptions,
    mk_policy: impl Fn() -> P,
) {
    let trace = spec.generate(seed);
    let mut materialised = run_policy(config.clone(), mk_policy(), &trace, opts.clone());
    let mut streamed = run_policy_streamed(config, mk_policy(), spec.stream(seed), opts);

    assert_eq!(
        fingerprint(&streamed),
        fingerprint(&materialised),
        "{label}: streamed run diverged from materialised run"
    );
    let ss = streamed.telemetry.take().expect("streamed stream");
    let ms = materialised.telemetry.take().expect("materialised stream");
    assert_eq!(
        ss.bytes, ms.bytes,
        "{label}: telemetry differs between streamed and materialised feeds"
    );
}

#[test]
fn headline_policies_match_materialised_runs() {
    let spec = spec();
    let cfg = config();
    assert_stream_equivalent("Base", &spec, 7, cfg.clone(), opts("Base"), || {
        array::BasePolicy
    });
    assert_stream_equivalent(
        "TPM",
        &spec,
        7,
        cfg.clone(),
        opts("TPM"),
        TpmPolicy::competitive,
    );
    assert_stream_equivalent(
        "DRPM",
        &spec,
        7,
        cfg.clone(),
        opts("DRPM"),
        DrpmPolicy::default,
    );
    assert_stream_equivalent(
        "PDC",
        &spec,
        7,
        cfg.clone(),
        opts("PDC"),
        PdcPolicy::default,
    );
    assert_stream_equivalent(
        "MAID",
        &spec,
        7,
        maid_array_config(cfg.clone(), 2),
        opts("MAID"),
        || {
            MaidPolicy::new(MaidConfig {
                cache_disks: 2,
                cache_chunks_per_disk: 256,
                tpm_threshold_s: Some(120.0),
            })
        },
    );
    assert_stream_equivalent("Hibernator", &spec, 7, cfg, opts("Hibernator"), hibernator);
}

#[test]
fn diurnal_mmpp_workload_matches_materialised_run() {
    // The hard generator path for the streaming engine: MMPP arrivals
    // plus diurnal thinning, whose batch draw order forces the two-pass
    // arrivals-RNG clone trick.
    let spec = WorkloadSpec::cello_like(3600.0, 20.0);
    let cfg = config_for(&spec);
    let mut o = RunOptions::for_horizon(3600.0);
    o.telemetry = Some(TelemetryConfig::new("cello-stream").with_goal(0.02, 360.0));
    assert_stream_equivalent("Cello/Hibernator", &spec, 13, cfg, o, hibernator);
}

#[test]
fn fleet_run_matches_materialised_trace() {
    // The fleet driver feeds its arrays through per-array `ShardStream`s
    // over one shared trace. A shared trace collected from the streaming
    // engine must reproduce the materialised-trace fleet run exactly:
    // fleet stream bytes, per-array reports, per-array telemetry.
    let spec = spec();
    let from_generate = spec.generate(23);
    let from_stream = collect_trace(spec.stream(23));
    assert_eq!(
        from_generate.requests, from_stream.requests,
        "stream-collected trace differs from generate()"
    );

    let run = |trace: &workload::Trace| {
        let mut o = RunOptions::for_horizon(DURATION_S);
        o.telemetry = Some(TelemetryConfig::new("fleet").with_goal(0.02, 90.0));
        let mut spec = FleetSpec::new(3, 8, config(), o, BudgetSchedule::constant(160.0));
        spec.fleet_epoch = SimDuration::from_secs(150.0);
        run_fleet(&spec, trace, &Pool::new(2), |_| hibernator())
    };
    let mut a = run(&from_generate);
    let mut b = run(&from_stream);

    assert_eq!(
        a.fleet_stream.bytes, b.fleet_stream.bytes,
        "fleet streams differ between trace sources"
    );
    assert_eq!(a.arrays.len(), b.arrays.len());
    for (i, (ra, rb)) in a.arrays.iter_mut().zip(&mut b.arrays).enumerate() {
        assert_eq!(
            fingerprint(ra),
            fingerprint(rb),
            "fleet array {i} diverged between trace sources"
        );
        let sa = ra.telemetry.take().expect("stream a");
        let sb = rb.telemetry.take().expect("stream b");
        assert_eq!(sa.bytes, sb.bytes, "fleet array {i} telemetry differs");
    }
}

#[test]
fn week_long_horizon_runs_in_bounded_trace_memory() {
    // A week of requests streams through while the simulation holds at
    // most one request of trace state — the whole point of the
    // streaming engine. The counter proves the volume actually flowed;
    // `feed_resident` (checked at every stepping pause) proves it was
    // never buffered.
    let horizon_s = 7.0 * 24.0 * 3600.0;
    let spec = WorkloadSpec::oltp(horizon_s, 1.0);
    let cfg = config_for(&spec);
    let (source, pulled) = Counted::new(spec.stream(42));
    let mut sim = Simulation::from_source(
        cfg,
        array::BasePolicy,
        source,
        RunOptions::for_horizon(horizon_s),
    );
    sim.start();
    let mut t = 0.0;
    while t < horizon_s {
        t += 6.0 * 3600.0;
        sim.step_until(SimTime::from_secs(t));
        assert!(
            sim.feed_resident() <= 1,
            "streamed feed buffered {} requests",
            sim.feed_resident()
        );
    }
    let (report, _) = sim.finish();
    let pulled = pulled.load(Ordering::Relaxed);
    assert!(
        pulled > 500_000,
        "week at 1 req/s should stream ~600k requests, saw {pulled}"
    );
    assert_eq!(
        report.completed + report.incomplete,
        pulled,
        "every pulled request must be admitted exactly once"
    );
}
