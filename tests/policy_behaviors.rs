//! Cross-crate behavioural tests for the baseline policies — the specific
//! failure modes the paper attributes to each scheme must be observable in
//! this implementation.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use policies::{
    maid_array_config, DrpmConfig, DrpmPolicy, MaidConfig, MaidPolicy, PdcConfig, PdcPolicy,
    TpmPolicy,
};
use simkit::{SimDuration, SimTime};
use workload::{Trace, VolumeIoKind, VolumeRequest, WorkloadSpec};

fn config(disks: usize) -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(1 << 30);
    c.disks = disks;
    c
}

/// TPM's pathology: a workload whose idle gaps sit just past the threshold
/// maximises spin-up stalls — the adversarial pattern from competitive
/// analysis. Energy saved is small, latency damage is large.
#[test]
fn tpm_thrashes_on_adversarial_gaps() {
    let threshold = 30.0;
    // One request per gap, sized so that even after a spin-up stall the
    // disk crosses the idle threshold and is asleep again before the next
    // arrival: every request pays the full wake-up.
    let gap = 65.0;
    let trace = Trace::from_requests(
        (0..40)
            .map(|i| VolumeRequest {
                time: SimTime::from_secs(i as f64 * gap),
                sector: 0,
                sectors: 16,
                kind: VolumeIoKind::Read,
            })
            .collect(),
    );
    let horizon = 40.0 * gap + 60.0;
    let tpm = run_policy(
        config(1),
        TpmPolicy::with_threshold(threshold),
        &trace,
        RunOptions::for_horizon(horizon),
    );
    // Nearly every request pays the full 10.9 s spin-up.
    let p50 = tpm.response_hist.quantile(0.5).unwrap();
    assert!(p50 > 9.0, "median should be a spin-up stall, got {p50}");
    // The energy story is mediocre: the sleep/wake cycle burns a large
    // part of what standby saved (2-competitive worst case).
    let base = run_policy(
        config(1),
        BasePolicy,
        &trace,
        RunOptions::for_horizon(horizon),
    );
    let savings = tpm.savings_vs(&base);
    assert!(
        savings < 0.45,
        "adversarial gaps should erode TPM savings: {savings}"
    );
    assert!(
        tpm.transitions >= 60,
        "expected thrash: {}",
        tpm.transitions
    );
}

/// DRPM's valve: with a *tight* degradation factor it must hold response
/// much closer to Base than with a loose one.
#[test]
fn drpm_degradation_valve_works() {
    let mut spec = WorkloadSpec::oltp(900.0, 40.0);
    spec.extents = 1024;
    let trace = spec.generate(77);
    let opts = RunOptions::for_horizon(900.0);
    let loose = run_policy(
        config(4),
        DrpmPolicy::new(DrpmConfig {
            window: SimDuration::from_secs(10.0),
            queue_up: 2,
            degrade_factor: 10.0, // valve effectively off
        }),
        &trace,
        opts.clone(),
    );
    let tight = run_policy(
        config(4),
        DrpmPolicy::new(DrpmConfig {
            window: SimDuration::from_secs(10.0),
            queue_up: 2,
            degrade_factor: 1.05,
        }),
        &trace,
        opts,
    );
    // The valve trades energy for performance pressure: a tight valve
    // keeps snapping disks back to full speed, so it cannot save more than
    // the loose one (the response side is noisy — the snap-ups themselves
    // cost ramp transients — so energy is the robust observable).
    assert!(
        tight.energy.total_joules() > loose.energy.total_joules(),
        "tight valve must spend more: tight {} loose {}",
        tight.energy.total_joules(),
        loose.energy.total_joules()
    );
    assert!(
        tight.transitions >= loose.transitions,
        "tight valve implies more snap-ups: {} vs {}",
        tight.transitions,
        loose.transitions
    );
}

/// PDC actually changes the layout: after an epoch, the hottest chunks
/// live on the first disks.
#[test]
fn pdc_layout_converges_to_popularity_order() {
    // Heavy skew on few chunks so concentration is unambiguous.
    let mut spec = WorkloadSpec::oltp(1200.0, 30.0);
    spec.extents = 256;
    spec.zipf_theta = 1.3;
    let trace = spec.generate(78);
    let pdc = run_policy(
        config(4),
        PdcPolicy::new(PdcConfig {
            epoch: SimDuration::from_secs(200.0),
            tpm_threshold_s: Some(600.0), // keep disks awake; test layout only
            migration_budget: 512,
            heat_tau: SimDuration::from_secs(300.0),
        }),
        &trace,
        RunOptions::for_horizon(1200.0),
    );
    assert!(pdc.migration.committed > 30, "{:?}", pdc.migration);
    // Disk 0 served clearly more foreground traffic than disk 3 by the end
    // (temperature concentration), visible in per-disk energy.
    let busy = |i: usize| {
        pdc.per_disk_energy[i].joules(simkit::EnergyComponent::Seek)
            + pdc.per_disk_energy[i].joules(simkit::EnergyComponent::Transfer)
    };
    assert!(
        busy(0) > busy(3) * 1.5,
        "hot disk {} vs cold disk {}",
        busy(0),
        busy(3)
    );
}

/// MAID's cache actually absorbs re-reads: second pass over a small hot set
/// is served by the cache disks.
#[test]
fn maid_cache_absorbs_rereads() {
    let mut reqs = Vec::new();
    // Two passes over the same 32 chunks.
    for pass in 0..2 {
        for i in 0..32u64 {
            reqs.push(VolumeRequest {
                time: SimTime::from_secs(pass as f64 * 200.0 + i as f64 * 2.0),
                sector: i * 2048,
                sectors: 16,
                kind: VolumeIoKind::Read,
            });
        }
    }
    let trace = Trace::from_requests(reqs);
    let cfg = maid_array_config(config(4), 1);
    let r = run_policy(
        cfg,
        MaidPolicy::new(MaidConfig {
            cache_disks: 1,
            cache_chunks_per_disk: 64,
            tpm_threshold_s: Some(3600.0),
        }),
        &trace,
        RunOptions::for_horizon(600.0),
    );
    assert_eq!(r.completed, 64);
    // Pass 1 promoted 32 chunks; pass 2 hits the cache. The cache disk
    // (last) must show substantial transfer energy.
    let cache_xfer = r.per_disk_energy[3].joules(simkit::EnergyComponent::Transfer);
    assert!(cache_xfer > 0.0, "cache disk served nothing");
    assert!(
        r.migration.raw_writes >= 32,
        "expected ≥32 promotions, got {}",
        r.migration.raw_writes
    );
}

/// Policies must coexist with chunk-spanning and maximal-size requests.
#[test]
fn policies_handle_boundary_requests() {
    let c = config(4);
    let cs = c.chunk_sectors;
    let trace = Trace::from_requests(vec![
        VolumeRequest {
            time: SimTime::from_secs(1.0),
            sector: cs - 1,
            sectors: 2, // spans chunks 0/1
            kind: VolumeIoKind::Write,
        },
        VolumeRequest {
            time: SimTime::from_secs(2.0),
            sector: 0,
            sectors: (cs * 3) as u32, // spans 3 whole chunks
            kind: VolumeIoKind::Read,
        },
        VolumeRequest {
            time: SimTime::from_secs(3.0),
            sector: c.volume_sectors() - 8,
            sectors: 8, // last sectors of the volume
            kind: VolumeIoKind::Read,
        },
    ]);
    for report in [
        run_policy(c.clone(), BasePolicy, &trace, RunOptions::for_horizon(30.0)),
        run_policy(
            c.clone(),
            TpmPolicy::competitive(),
            &trace,
            RunOptions::for_horizon(30.0),
        ),
        run_policy(
            c.clone(),
            DrpmPolicy::default(),
            &trace,
            RunOptions::for_horizon(30.0),
        ),
    ] {
        assert_eq!(report.completed, 3, "{}", report.policy);
        assert_eq!(report.incomplete, 0);
    }
}
