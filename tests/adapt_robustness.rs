//! The adaptation race must be a property of the policies, not of one
//! random universe: across 20 seeds, each adaptive migration policy
//! (rotating analytic / LFU / bandit / SleepScale) survives a mid-run
//! popularity flip with its telemetry audit clean, a sane re-adaptation
//! time, no lost requests, and bit-identical repeat runs.

use array::{run_policy_streamed, ArrayConfig, BasePolicy, RunOptions, RunReport};
use hibernator::{AnalyticPolicy, Hibernator, HibernatorConfig, MigrationConfig, MigrationPolicy};
use policies::{BanditPolicy, LfuPolicy, SleepScalePolicy};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::{Scenario, WorkloadSpec};

const DURATION_S: f64 = 2400.0;
const FLIP_S: f64 = DURATION_S * 0.5;

fn spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 30.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.0;
    spec
}

fn config(seed: u64) -> ArrayConfig {
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    config.seed = seed;
    config
}

fn contender(idx: u64) -> (&'static str, Box<dyn MigrationPolicy>) {
    match idx {
        0 => (
            "analytic",
            Box::new(AnalyticPolicy::with_config(MigrationConfig::adaptive())),
        ),
        1 => ("lfu", Box::new(LfuPolicy::new())),
        2 => ("bandit", Box::new(BanditPolicy::new())),
        _ => ("sleepscale", Box::new(SleepScalePolicy::new())),
    }
}

fn hib(goal_s: f64, idx: u64) -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    cfg.guard_window = SimDuration::from_secs(60.0);
    cfg.guard_hysteresis = SimDuration::from_secs(120.0);
    Hibernator::with_policy(cfg, contender(idx).1)
}

fn flipped_run(seed: u64, idx: u64, goal_s: f64, telemetry: bool) -> RunReport {
    let sc = Scenario::PopularityFlip { at_s: FLIP_S };
    let mut opts = RunOptions::for_horizon(DURATION_S);
    if telemetry {
        opts.telemetry = Some(TelemetryConfig::new(format!("adapt-{seed}")));
    }
    run_policy_streamed(
        config(seed),
        hib(goal_s, idx),
        sc.apply(&spec(), seed),
        opts,
    )
}

#[test]
fn popularity_flip_is_survived_across_seeds() {
    for seed in 0..20u64 {
        let idx = seed % 4;
        let name = contender(idx).0;
        let sc = Scenario::PopularityFlip { at_s: FLIP_S };
        let base = run_policy_streamed(
            config(seed),
            BasePolicy,
            sc.apply(&spec(), seed),
            RunOptions::for_horizon(DURATION_S),
        );
        let goal = base.response.mean() * 1.6;
        let mut run = flipped_run(seed, idx, goal, true);

        // No lost work.
        assert_eq!(
            run.completed + run.incomplete,
            base.completed + base.incomplete,
            "seed {seed} ({name}): lost requests"
        );
        assert!(
            run.incomplete <= 5,
            "seed {seed} ({name}): {} incomplete",
            run.incomplete
        );

        // Re-adaptation is sane: the last goal-violating response bucket
        // ends within the run, and the post-flip tail (the final 20% of
        // the horizon) has recovered to within 3x goal on median.
        let w = run.response_series.bucket_width().as_secs();
        let mut tail: Vec<f64> = Vec::new();
        for i in 0..run.response_series.len() {
            let start = i as f64 * w;
            if let Some(m) = run.response_series.bucket(i).and_then(|b| b.mean()) {
                assert!(m.is_finite() && m >= 0.0, "seed {seed}: insane bucket {m}");
                if start >= DURATION_S * 0.8 {
                    tail.push(m);
                }
            }
        }
        assert!(
            !tail.is_empty(),
            "seed {seed} ({name}): empty post-flip tail"
        );
        tail.sort_by(|a, b| a.total_cmp(b));
        let median = tail[tail.len() / 2];
        assert!(
            median < goal * 3.0,
            "seed {seed} ({name}): tail median {median} never re-adapted (goal {goal})"
        );

        // The stream survives the replay audit (energy ledger, migration
        // concurrency, migration-grace, …).
        let stream = run.telemetry.take().expect("stream captured");
        let outcome = telemetry::audit::audit_bytes(&stream.bytes).expect("well-formed stream");
        assert!(
            outcome.passed(),
            "seed {seed} ({name}): audit failed: {:?}",
            outcome
                .runs
                .iter()
                .flat_map(|r| r.checks.iter().filter(|c| !c.passed))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn repeat_runs_are_bit_identical() {
    for seed in [3u64, 10, 13] {
        let idx = seed % 4;
        let name = contender(idx).0;
        let a = flipped_run(seed, idx, 0.05, false);
        let b = flipped_run(seed, idx, 0.05, false);
        assert_eq!(
            a.energy.total_joules(),
            b.energy.total_joules(),
            "seed {seed} ({name}): energy not reproducible"
        );
        assert_eq!(
            a.response.mean(),
            b.response.mean(),
            "seed {seed} ({name}): response not reproducible"
        );
        assert_eq!(
            a.response_series.mean_points(),
            b.response_series.mean_points(),
            "seed {seed} ({name}): series not reproducible"
        );
    }
}
