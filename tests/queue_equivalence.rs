//! Property: the ladder event queue with batched arrival admission and
//! slab-backed in-flight state is observationally identical to the
//! reference `BinaryHeap` queue with per-event admission. Running the
//! same scenario with [`RunOptions::reference_heap_queue`] on and off
//! must produce bit-identical [`RunReport`] numerics, byte-identical
//! telemetry streams, and byte-identical fleet streams.
//!
//! Why this must hold: the packed `(time, seq)` keys are unique, so the
//! two queue backends pop identical streams for identical push
//! sequences; batched admission reserves the next arrival's key at the
//! exact code point the unbatched path pushes it and only handles the
//! arrival inline when that key would be the very next pop anyway; and
//! slab slot indices never influence ordering (disk queues are FIFO and
//! telemetry carries no request ids). The scenarios below stress every
//! piece of that argument: all six headline policies, same-instant
//! event bursts, the DRAM cache's inline completions, fault storms with
//! retries and slot reuse after disk failure, and fleet-segmented
//! stepping with finite budgets.

use array::{run_policy, ArrayConfig, Redundancy, RunOptions, RunReport};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use hibernator::{Hibernator, HibernatorConfig};
use parallel::Pool;
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::{SimDuration, SimTime};
use telemetry::TelemetryConfig;
use workload::{Trace, WorkloadSpec};

const DURATION_S: f64 = 900.0;

fn trace(seed: u64) -> Trace {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 25.0);
    spec.extents = 1024;
    spec.zipf_theta = 1.0;
    spec.generate(seed)
}

fn config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    c
}

fn opts(label: &str) -> RunOptions {
    let mut o = RunOptions::for_horizon(DURATION_S);
    o.telemetry = Some(TelemetryConfig::new(label).with_goal(0.02, 90.0));
    o
}

fn hibernator() -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(0.02);
    cfg.epoch = SimDuration::from_secs(180.0);
    cfg.heat_tau = SimDuration::from_secs(180.0);
    Hibernator::new(cfg)
}

fn maid() -> MaidPolicy {
    MaidPolicy::new(MaidConfig {
        cache_disks: 2,
        cache_chunks_per_disk: 256,
        tpm_threshold_s: Some(120.0),
    })
}

/// Everything numeric a run reports, bit-exact.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    vec![
        r.completed,
        r.incomplete,
        r.events_processed,
        r.transitions,
        r.energy.total_joules().to_bits(),
        r.response.mean().to_bits(),
        r.response.raw_second_moment().to_bits(),
        r.service.mean().to_bits(),
        r.fg_sectors,
        r.migration.committed,
        r.migration.aborted,
        r.migration.rebuilt,
        r.migration.raw_writes,
        r.faults.lost_requests,
        r.faults.degraded_redirects,
        r.faults.rebuild_chunks,
        r.faults.retries,
        r.faults.transient_errors,
    ]
}

/// Runs the same scenario on both queue configurations — ladder with
/// batched admission vs the reference heap with per-event admission —
/// and asserts reports and telemetry streams agree exactly.
fn assert_equivalent<P: array::PowerPolicy + Send>(
    label: &str,
    config: ArrayConfig,
    trace: &Trace,
    opts: RunOptions,
    mk_policy: impl Fn() -> P,
) {
    let mut ladder_opts = opts.clone();
    ladder_opts.reference_heap_queue = false;
    let mut heap_opts = opts;
    heap_opts.reference_heap_queue = true;

    let mut ladder = run_policy(config.clone(), mk_policy(), trace, ladder_opts);
    let mut heap = run_policy(config, mk_policy(), trace, heap_opts);

    assert_eq!(
        fingerprint(&ladder),
        fingerprint(&heap),
        "{label}: ladder queue diverged from reference heap"
    );
    for (t, (a, b)) in ladder
        .tenant_latency
        .iter()
        .zip(&heap.tenant_latency)
        .enumerate()
    {
        assert_eq!(a.count(), b.count(), "{label}: tenant {t} count");
        assert_eq!(a.quantile(0.5), b.quantile(0.5), "{label}: tenant {t} p50");
    }
    let ls = ladder.telemetry.take().expect("ladder stream");
    let hs = heap.telemetry.take().expect("heap stream");
    assert_eq!(
        ls.bytes, hs.bytes,
        "{label}: telemetry streams differ between queue backends"
    );
}

#[test]
fn headline_policies_match_reference_queue() {
    let trace = trace(7);
    let cfg = config();
    assert_equivalent("Base", cfg.clone(), &trace, opts("Base"), || {
        array::BasePolicy
    });
    assert_equivalent(
        "TPM",
        cfg.clone(),
        &trace,
        opts("TPM"),
        TpmPolicy::competitive,
    );
    assert_equivalent(
        "DRPM",
        cfg.clone(),
        &trace,
        opts("DRPM"),
        DrpmPolicy::default,
    );
    assert_equivalent("PDC", cfg.clone(), &trace, opts("PDC"), PdcPolicy::default);
    assert_equivalent(
        "MAID",
        maid_array_config(cfg.clone(), 2),
        &trace,
        opts("MAID"),
        maid,
    );
    assert_equivalent("Hibernator", cfg, &trace, opts("Hibernator"), hibernator);
}

#[test]
fn faulted_cached_tenant_run_matches_reference_queue() {
    // The hard scenario for slab slot reuse: RAID-5 parity ids, a fault
    // storm with transient retries and a whole-disk failure (stranded
    // pieces, lost volumes, rebuild traffic), a DRAM cache absorbing and
    // destaging writes, and per-tenant accounting — on both a managed and
    // an unmanaged policy.
    let at = |f: f64| SimTime::from_secs(DURATION_S * f);
    let plan = FaultPlan {
        schedule: FaultSchedule::new(vec![
            FaultEvent {
                time: at(0.2),
                disk: 1,
                kind: FaultKind::TransientBurst {
                    error_prob: 0.25,
                    duration_s: DURATION_S * 0.1,
                },
            },
            FaultEvent {
                time: at(0.4),
                disk: 2,
                kind: FaultKind::DiskFailure,
            },
            FaultEvent {
                time: at(0.6),
                disk: 4,
                kind: FaultKind::TransientBurst {
                    error_prob: 0.15,
                    duration_s: DURATION_S * 0.05,
                },
            },
        ]),
        config: FaultConfig::default(),
    };
    let trace = trace(19);
    let mut cfg = config();
    cfg.redundancy = Redundancy::Raid5Like;
    let mut o = opts("fault-cache");
    o.faults = Some(plan);
    o.cache = Some(cache::CacheConfig::with_capacity(256));
    o.tenant_sectors = Some(cfg.volume_sectors() / 8);
    assert_equivalent("fault-cache-tpm", cfg.clone(), &trace, o.clone(), || {
        TpmPolicy::with_threshold(120.0)
    });
    assert_equivalent("fault-cache-hib", cfg, &trace, o, hibernator);
}

#[test]
fn fleet_run_matches_reference_queue() {
    // Fleet-segmented stepping: arrays pause at every arbiter epoch, so
    // batched admission must respect the segment limit exactly. Finite
    // budget and rebalancing keep the arbiter and placement layers active.
    let trace = trace(23);
    let run = |reference: bool| {
        let mut o = RunOptions::for_horizon(DURATION_S);
        o.telemetry = Some(TelemetryConfig::new("fleet").with_goal(0.02, 90.0));
        o.reference_heap_queue = reference;
        let mut spec = FleetSpec::new(3, 8, config(), o, BudgetSchedule::constant(160.0));
        spec.fleet_epoch = SimDuration::from_secs(150.0);
        run_fleet(&spec, &trace, &Pool::new(2), |_| hibernator())
    };
    let mut ladder = run(false);
    let mut heap = run(true);

    assert_eq!(
        ladder.fleet_stream.bytes, heap.fleet_stream.bytes,
        "fleet streams differ between queue backends"
    );
    assert_eq!(ladder.arrays.len(), heap.arrays.len());
    for (i, (a, b)) in ladder.arrays.iter_mut().zip(&mut heap.arrays).enumerate() {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "fleet array {i} diverged between queue backends"
        );
        let ls = a.telemetry.take().expect("ladder stream");
        let hs = b.telemetry.take().expect("heap stream");
        assert_eq!(ls.bytes, hs.bytes, "fleet array {i} telemetry differs");
    }
}
