//! Reproducibility: a simulation is a pure function of (config, trace,
//! policy parameters). Same inputs → bit-identical reports; different seeds
//! → different microscopic outcomes.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{DrpmPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use workload::WorkloadSpec;

fn scenario(seed: u64) -> (ArrayConfig, workload::Trace, RunOptions) {
    let mut spec = WorkloadSpec::oltp(900.0, 25.0);
    spec.extents = 1024;
    let trace = spec.generate(seed);
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = 4;
    config.seed = seed;
    (config, trace, RunOptions::for_horizon(900.0))
}

fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64) {
    (
        r.completed,
        r.energy.total_joules().to_bits(),
        r.response.mean().to_bits(),
        r.response.raw_second_moment().to_bits(),
    )
}

#[test]
fn base_run_is_bit_identical() {
    let (c1, t1, o1) = scenario(5);
    let (c2, t2, o2) = scenario(5);
    let a = run_policy(c1, BasePolicy, &t1, o1);
    let b = run_policy(c2, BasePolicy, &t2, o2);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn every_policy_is_deterministic() {
    let run_pair = |mk: &dyn Fn() -> RunReport| {
        let a = mk();
        let b = mk();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    };
    run_pair(&|| {
        let (c, t, o) = scenario(6);
        run_policy(c, TpmPolicy::competitive(), &t, o)
    });
    run_pair(&|| {
        let (c, t, o) = scenario(6);
        run_policy(c, DrpmPolicy::default(), &t, o)
    });
    run_pair(&|| {
        let (c, t, o) = scenario(6);
        run_policy(c, PdcPolicy::default(), &t, o)
    });
    run_pair(&|| {
        let (c, t, o) = scenario(6);
        let mut cfg = HibernatorConfig::for_goal(0.010);
        cfg.epoch = SimDuration::from_secs(200.0);
        run_policy(c, Hibernator::new(cfg), &t, o)
    });
}

#[test]
fn different_seeds_differ() {
    let (c1, t1, o1) = scenario(7);
    let (c2, t2, o2) = scenario(8);
    let a = run_policy(c1, BasePolicy, &t1, o1);
    let b = run_policy(c2, BasePolicy, &t2, o2);
    assert_ne!(
        a.energy.total_joules().to_bits(),
        b.energy.total_joules().to_bits()
    );
}

#[test]
fn trace_generation_independent_of_consumer() {
    // Generating the same workload twice, interleaved with other RNG use,
    // must give the same trace (labelled streams don't interfere).
    let spec = WorkloadSpec::cello_like(600.0, 20.0);
    let a = spec.generate(9);
    let _noise = WorkloadSpec::oltp(600.0, 99.0).generate(9);
    let b = spec.generate(9);
    assert_eq!(a.requests, b.requests);
}
