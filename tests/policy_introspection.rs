//! `run_returning_policy`: policy-internal counters are observable after a
//! run, and they corroborate the report's externally visible numbers.

use array::{ArrayConfig, RunOptions, Simulation};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{maid_array_config, MaidConfig, MaidPolicy};
use simkit::{SimDuration, SimTime};
use workload::{Trace, VolumeIoKind, VolumeRequest, WorkloadSpec};

#[test]
fn maid_hit_ratio_matches_reread_pattern() {
    // 32 cold reads then the same 32 again: second pass should hit.
    let mut reqs = Vec::new();
    for pass in 0..2 {
        for i in 0..32u64 {
            reqs.push(VolumeRequest {
                time: SimTime::from_secs(pass as f64 * 200.0 + i as f64 * 2.0),
                sector: i * 2048,
                sectors: 16,
                kind: VolumeIoKind::Read,
            });
        }
    }
    let trace = Trace::from_requests(reqs);
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = 4;
    let config = maid_array_config(config, 1);
    let sim = Simulation::new(
        config,
        MaidPolicy::new(MaidConfig {
            cache_disks: 1,
            cache_chunks_per_disk: 64,
            tpm_threshold_s: Some(3600.0),
        }),
        &trace,
        RunOptions::for_horizon(600.0),
    );
    let (report, policy) = sim.run_returning_policy();
    assert_eq!(report.completed, 64);
    // 32 misses (first pass) + 32 hits (second pass) → ratio ≈ 0.5.
    let ratio = policy.hit_ratio();
    assert!(
        (ratio - 0.5).abs() < 0.05,
        "expected ~50% hit ratio, got {ratio}"
    );
    assert_eq!(policy.cached_chunks(), 32);
}

#[test]
fn hibernator_counters_corroborate_report() {
    let mut spec = WorkloadSpec::oltp(1800.0, 25.0);
    spec.extents = 1024;
    let trace = spec.generate(83);
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = 4;
    let mut cfg = HibernatorConfig::for_goal(0.015);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    let sim = Simulation::new(
        config,
        Hibernator::new(cfg),
        &trace,
        RunOptions::for_horizon(1800.0),
    );
    let (report, policy) = sim.run_returning_policy();
    let stats = policy.stats();
    assert!(
        stats.reconfigurations >= 1,
        "at least the first epoch must reconfigure"
    );
    // Each reconfiguration ramps at least one disk; transitions in the
    // report must account for that (boosts add more).
    assert!(
        report.transitions >= stats.reconfigurations,
        "transitions {} vs reconfigurations {}",
        report.transitions,
        stats.reconfigurations
    );
    assert!(!policy.is_boosted() || stats.boosts > 0);
}
