//! Equivalence lockdown for the migration-policy trait extraction.
//!
//! [`Hibernator::with_reference_planner`] bypasses the
//! [`hibernator::MigrationPolicy`] trait and calls the original
//! `plan_migrations` / allocator code directly; the default host routes
//! through [`hibernator::AnalyticPolicy::legacy`]. Across every
//! Hibernator variant of the headline comparison — default, no-guard,
//! no-migration, random-migration, standby-enabled — the two arms must be
//! *bit-identical*: same energy, same response distribution, same
//! completion counts, and byte-for-byte the same telemetry stream.
//!
//! If this test fails, the trait refactor changed behavior; the repro
//! telemetry golden will usually fail with it.

use array::{run_policy, ArrayConfig, RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig, MigrationMode};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::WorkloadSpec;

const DURATION_S: f64 = 1800.0;

fn cfg(goal_s: f64) -> HibernatorConfig {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    cfg.guard_window = SimDuration::from_secs(60.0);
    cfg.guard_hysteresis = SimDuration::from_secs(120.0);
    cfg
}

type VariantBuilder = fn(HibernatorConfig) -> Hibernator;

/// The Hibernator variants of the headline comparison, as (name, builder).
fn variants() -> Vec<(&'static str, VariantBuilder)> {
    vec![
        ("default", Hibernator::new),
        ("no-guard", |c| Hibernator::new(c).without_guard()),
        ("no-migration", |c| Hibernator::new(c).without_migration()),
        ("random-migration", |c| {
            let mut c = c;
            c.migration_mode = MigrationMode::Random;
            Hibernator::new(c)
        }),
        ("standby", |c| {
            let mut c = c;
            c.allow_standby = true;
            Hibernator::new(c)
        }),
    ]
}

fn run(variant: fn(HibernatorConfig) -> Hibernator, reference: bool, label: &str) -> RunReport {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 30.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.0;
    let trace = spec.generate(23);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    config.seed = 23;
    let mut opts = RunOptions::for_horizon(DURATION_S);
    opts.telemetry = Some(TelemetryConfig::new(label.to_string()));
    let policy = if reference {
        variant(cfg(0.05)).with_reference_planner()
    } else {
        variant(cfg(0.05))
    };
    run_policy(config, policy, &trace, opts)
}

#[test]
fn trait_hosted_planner_is_bit_identical_to_the_reference() {
    for (name, variant) in variants() {
        let mut traited = run(variant, false, &format!("equiv-{name}"));
        let mut reference = run(variant, true, &format!("equiv-{name}"));

        assert_eq!(
            traited.energy.total_joules(),
            reference.energy.total_joules(),
            "{name}: energy diverged"
        );
        assert_eq!(
            traited.response.mean(),
            reference.response.mean(),
            "{name}: mean response diverged"
        );
        assert_eq!(
            (traited.completed, traited.incomplete),
            (reference.completed, reference.incomplete),
            "{name}: completion counts diverged"
        );
        assert_eq!(
            traited.response_series.mean_points(),
            reference.response_series.mean_points(),
            "{name}: response series diverged"
        );

        let t = traited.telemetry.take().expect("stream captured").bytes;
        let r = reference.telemetry.take().expect("stream captured").bytes;
        if t != r {
            let ts = String::from_utf8_lossy(&t);
            let rs = String::from_utf8_lossy(&r);
            for (i, (a, b)) in ts.lines().zip(rs.lines()).enumerate() {
                assert_eq!(a, b, "{name}: first telemetry divergence at line {}", i + 1);
            }
            panic!(
                "{name}: stream lengths diverged: {} vs {} lines",
                ts.lines().count(),
                rs.lines().count()
            );
        }
        // The legacy analytic path must stay silent in telemetry: no
        // policy events, so legacy streams keep their pre-trait bytes.
        assert!(
            !String::from_utf8_lossy(&t).contains("\"ev\":\"policy\""),
            "{name}: the legacy path must not emit PolicyDecision events"
        );
    }
}
