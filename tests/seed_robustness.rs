//! The headline orderings must be properties of the *policies*, not of one
//! random universe: across several seeds, Hibernator keeps saving while
//! staying near goal, and the baselines keep their signatures.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{DrpmPolicy, TpmPolicy};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::WorkloadSpec;

const DURATION_S: f64 = 2400.0;

fn scenario(seed: u64) -> (ArrayConfig, workload::Trace, RunOptions) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 30.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.0;
    let trace = spec.generate(seed);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    config.seed = seed;
    (config, trace, RunOptions::for_horizon(DURATION_S))
}

fn hib(goal_s: f64) -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    cfg.guard_window = SimDuration::from_secs(60.0);
    cfg.guard_hysteresis = SimDuration::from_secs(120.0);
    Hibernator::new(cfg)
}

#[test]
fn orderings_hold_across_seeds() {
    for seed in [11u64, 222, 3333] {
        let (config, trace, opts) = scenario(seed);
        let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
        let goal = base.response.mean() * 1.6;

        let hib = run_policy(config.clone(), hib(goal), &trace, opts.clone());
        let tpm = run_policy(
            config.clone(),
            TpmPolicy::competitive(),
            &trace,
            opts.clone(),
        );
        let drpm = run_policy(config, DrpmPolicy::default(), &trace, opts);

        // Hibernator saves meaningfully at a 1.6x goal…
        let s_hib = hib.savings_vs(&base);
        assert!(s_hib > 0.08, "seed {seed}: hibernator savings {s_hib}");
        // …TPM saves ~nothing on steady OLTP…
        assert!(
            tpm.savings_vs(&base).abs() < 0.05,
            "seed {seed}: tpm {}",
            tpm.savings_vs(&base)
        );
        // …DRPM saves heavily (typically, but not always, more than the
        // goal-bound Hibernator) while degrading response far more.
        assert!(
            drpm.savings_vs(&base) > 0.30,
            "seed {seed}: drpm {}",
            drpm.savings_vs(&base)
        );
        let median = |r: &array::RunReport| {
            let mut v: Vec<f64> = r
                .response_series
                .mean_points()
                .into_iter()
                .filter(|(t, _)| *t > DURATION_S * 0.3)
                .map(|(_, x)| x)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        assert!(
            median(&drpm) > median(&hib) * 1.3,
            "seed {seed}: drpm median {} vs hib {}",
            median(&drpm),
            median(&hib)
        );
        // And nobody loses requests.
        for (name, r) in [("hib", &hib), ("tpm", &tpm), ("drpm", &drpm)] {
            assert!(
                r.completed + r.incomplete == base.completed + base.incomplete && r.incomplete <= 5,
                "seed {seed}: {name} lost work"
            );
        }
    }
}

#[test]
fn cache_behavior_holds_across_seeds() {
    // The controller DRAM cache's properties must be seed-independent:
    // on the hot OLTP set it always hits, it never loses foreground
    // requests, and the telemetry it emits always reconciles — the
    // energy ledger, the cache-accounting invariant, and every other
    // audit check hold on all 20 universes.
    for seed in 0..20u64 {
        let (config, trace, mut opts) = scenario(seed);
        opts.cache = Some(cache::CacheConfig::with_capacity(256));
        opts.telemetry = Some(TelemetryConfig::new(format!("seed-{seed}")));
        let bare = run_policy(
            config.clone(),
            TpmPolicy::competitive(),
            &trace,
            RunOptions::for_horizon(DURATION_S),
        );
        let mut cached = run_policy(config, TpmPolicy::competitive(), &trace, opts);

        let stats = cached.cache.expect("cache enabled");
        assert!(
            stats.read_hits > 0,
            "seed {seed}: hot OLTP set never hit ({stats:?})"
        );
        assert!(
            stats.read_hit_rate() > 0.2,
            "seed {seed}: hit rate collapsed ({:.3})",
            stats.read_hit_rate()
        );
        assert_eq!(
            cached.completed + cached.incomplete,
            bare.completed + bare.incomplete,
            "seed {seed}: cache lost foreground requests"
        );

        // The stream must survive the full replay audit: energy
        // conservation and completed == hits + disk-served included.
        let stream = cached.telemetry.take().expect("stream captured");
        let outcome = telemetry::audit::audit_bytes(&stream.bytes).expect("well-formed stream");
        assert!(
            outcome.passed(),
            "seed {seed}: audit failed: {:?}",
            outcome
                .runs
                .iter()
                .flat_map(|r| r.checks.iter().filter(|c| !c.passed))
                .collect::<Vec<_>>()
        );
    }
}
