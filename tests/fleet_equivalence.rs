//! Differential lockdown: a fleet of ONE array with an unlimited budget
//! is not merely "similar to" the plain single-array simulator — it IS
//! the plain single-array simulator.
//!
//! The fleet driver shards the trace by tenant placement, steps the array
//! in fleet-epoch segments via `step_until`, and lets the arbiter observe
//! power between segments. None of that may perturb the run: with one
//! array the shard is the identity, with an unlimited budget the arbiter
//! never grants a cap, and segmented stepping replays the exact event
//! sequence. Every headline policy must produce bit-identical report
//! numerics AND telemetry stream bytes. This is what lets the fleet layer
//! ride on the simulator without invalidating a single golden result.
//!
//! A 20-seed property sweep then locks the fleet-level invariants (grant
//! conservation, honest budget accounting, request conservation, move
//! accounting) over varied fleet shapes and finite budgets.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use hibernator::{Hibernator, HibernatorConfig};
use parallel::Pool;
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::{Trace, WorkloadSpec};

const DURATION_S: f64 = 900.0;
const TENANTS: u32 = 8;

fn trace(seed: u64) -> Trace {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 25.0);
    spec.extents = 1024;
    spec.zipf_theta = 1.0;
    spec.generate(seed)
}

fn config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    c
}

fn opts(label: &str) -> RunOptions {
    let mut o = RunOptions::for_horizon(DURATION_S);
    o.series_bucket = SimDuration::from_secs(60.0);
    o.sample_interval = SimDuration::from_secs(60.0);
    o.telemetry = Some(TelemetryConfig::new(label).with_goal(0.02, 90.0));
    o
}

fn hibernator() -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(0.02);
    cfg.epoch = SimDuration::from_secs(180.0);
    cfg.heat_tau = SimDuration::from_secs(180.0);
    Hibernator::new(cfg)
}

/// A one-array unlimited-budget fleet spec over `config` — the degenerate
/// fleet that must reduce to the plain run. The 150 s fleet epoch is
/// deliberately co-prime-ish with the policies' own cadences so segmented
/// stepping gets no accidental alignment help.
fn spec_one(config: ArrayConfig, o: RunOptions) -> FleetSpec {
    let mut s = FleetSpec::new(1, TENANTS, config, o, BudgetSchedule::unlimited());
    s.fleet_epoch = SimDuration::from_secs(150.0);
    s
}

/// Runs headline policy `ix` both ways: solo via `run_policy` and as a
/// fleet of one via `run_fleet`, returning (solo, fleet-member) reports.
fn both(ix: usize, label: &str, trace: &Trace) -> (RunReport, RunReport) {
    let pool = Pool::new(2);
    let (cfg, o) = (config(), opts(label));
    // The solo run must see the same tenant sharding the fleet driver
    // installs, so even the per-tenant histograms are comparable.
    let spec = spec_one(
        if ix == 4 {
            maid_array_config(cfg.clone(), 2)
        } else {
            cfg.clone()
        },
        o.clone(),
    );
    let mut solo_opts = o;
    solo_opts.tenant_sectors = Some(spec.tenant_sectors);

    let fleet_report = match ix {
        0 => run_fleet(&spec, trace, &pool, |_| BasePolicy).arrays,
        1 => run_fleet(&spec, trace, &pool, |_| TpmPolicy::competitive()).arrays,
        2 => run_fleet(&spec, trace, &pool, |_| DrpmPolicy::default()).arrays,
        3 => run_fleet(&spec, trace, &pool, |_| PdcPolicy::default()).arrays,
        4 => {
            run_fleet(&spec, trace, &pool, |_| {
                MaidPolicy::new(MaidConfig {
                    cache_disks: 2,
                    cache_chunks_per_disk: 256,
                    tpm_threshold_s: Some(120.0),
                })
            })
            .arrays
        }
        5 => run_fleet(&spec, trace, &pool, |_| hibernator()).arrays,
        _ => unreachable!(),
    }
    .pop()
    .expect("fleet of one has one report");

    let solo = match ix {
        0 => run_policy(cfg, BasePolicy, trace, solo_opts),
        1 => run_policy(cfg, TpmPolicy::competitive(), trace, solo_opts),
        2 => run_policy(cfg, DrpmPolicy::default(), trace, solo_opts),
        3 => run_policy(cfg, PdcPolicy::default(), trace, solo_opts),
        4 => run_policy(
            maid_array_config(cfg, 2),
            MaidPolicy::new(MaidConfig {
                cache_disks: 2,
                cache_chunks_per_disk: 256,
                tpm_threshold_s: Some(120.0),
            }),
            trace,
            solo_opts,
        ),
        5 => run_policy(cfg, hibernator(), trace, solo_opts),
        _ => unreachable!(),
    };
    (solo, fleet_report)
}

const POLICY_NAMES: [&str; 6] = ["Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator"];

#[test]
fn fleet_of_one_is_bit_identical_to_the_solo_run() {
    let trace = trace(7);
    for (ix, name) in POLICY_NAMES.iter().enumerate() {
        let (mut solo, mut one) = both(ix, name, &trace);

        // Report numerics, exact — these are f64s from the identical
        // event sequence, so equality is the correct comparison.
        assert_eq!(solo.completed, one.completed, "{name}: completed");
        assert_eq!(solo.incomplete, one.incomplete, "{name}: incomplete");
        assert_eq!(solo.fg_sectors, one.fg_sectors, "{name}: fg_sectors");
        assert_eq!(solo.transitions, one.transitions, "{name}: transitions");
        assert_eq!(
            solo.events_processed, one.events_processed,
            "{name}: events_processed"
        );
        assert_eq!(
            solo.energy.total_joules(),
            one.energy.total_joules(),
            "{name}: energy"
        );
        assert_eq!(
            solo.response.mean(),
            one.response.mean(),
            "{name}: mean response"
        );
        assert_eq!(
            solo.response.count(),
            one.response.count(),
            "{name}: response count"
        );
        assert_eq!(
            solo.migration.raw_writes, one.migration.raw_writes,
            "{name}: raw writes"
        );

        // Per-tenant latency: same tenants, same counts, same medians.
        assert_eq!(
            solo.tenant_latency.len(),
            one.tenant_latency.len(),
            "{name}: tenant count"
        );
        for (t, (a, b)) in solo
            .tenant_latency
            .iter()
            .zip(&one.tenant_latency)
            .enumerate()
        {
            assert_eq!(a.count(), b.count(), "{name}: tenant {t} count");
            assert_eq!(a.quantile(0.5), b.quantile(0.5), "{name}: tenant {t} p50");
        }

        // The telemetry streams must match byte for byte: same events, in
        // the same order, with the same formatted floats.
        let a = solo.telemetry.take().expect("stream captured").bytes;
        let b = one.telemetry.take().expect("stream captured").bytes;
        assert!(
            a == b,
            "{name}: telemetry streams diverge ({} vs {} bytes)",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn unlimited_fleet_of_one_reports_no_fleet_activity() {
    let trace = trace(7);
    let report = run_fleet(
        &spec_one(config(), opts("Base")),
        &trace,
        &Pool::new(1),
        |_| BasePolicy,
    );
    assert!(
        report.budget_j.is_none(),
        "unlimited budget never integrates"
    );
    assert_eq!(report.cap_violation_s, 0.0);
    assert_eq!(report.tenant_moves, 0, "one array: nowhere to move");
    assert!((0..report.epochs.len()).all(|k| report.epoch_caps(k).is_empty()));
    let audit = report.audit().expect("fleet stream parses");
    assert!(audit.passed(), "degenerate fleet passes the fleet audit");
}

#[test]
fn worker_partition_does_not_change_results() {
    // The persistent-worker driver partitions arrays into contiguous
    // per-worker blocks; 5 arrays across 1, 3, and 8 workers exercises
    // the serial case, an uneven split (2+2+1), and more workers than
    // arrays. Every observable — stream bytes, rollup numerics, and the
    // full arbiter decision log including per-epoch caps and completion
    // counts — must be bit-identical across all three.
    let tr = trace(11);
    let mut spec = FleetSpec::new(
        5,
        TENANTS,
        config(),
        RunOptions::for_horizon(DURATION_S),
        BudgetSchedule::constant(300.0),
    );
    spec.fleet_epoch = SimDuration::from_secs(150.0);

    let reports: Vec<_> = [1usize, 3, 8]
        .iter()
        .map(|&jobs| run_fleet(&spec, &tr, &Pool::new(jobs), |_| hibernator()))
        .collect();
    let a = &reports[0];
    for (r, jobs) in reports.iter().zip([1, 3, 8]) {
        // Epoch completion counts are drained from the shard map and
        // must tile the fleet total exactly — no segment double-counted
        // or dropped.
        let per_epoch: u64 = r.epochs.iter().map(|e| e.completed).sum();
        assert_eq!(
            per_epoch, r.completed,
            "jobs {jobs}: epoch completions don't tile the total"
        );

        assert_eq!(a.completed, r.completed, "jobs {jobs}: completed");
        assert_eq!(a.fleet_energy_j, r.fleet_energy_j, "jobs {jobs}: energy");
        assert_eq!(
            a.cap_violation_s, r.cap_violation_s,
            "jobs {jobs}: violation time"
        );
        assert_eq!(a.epochs.len(), r.epochs.len(), "jobs {jobs}: epoch count");
        for (k, (ea, er)) in a.epochs.iter().zip(&r.epochs).enumerate() {
            assert_eq!(ea.demand_w, er.demand_w, "jobs {jobs}: epoch {k} demand");
            assert_eq!(
                ea.completed, er.completed,
                "jobs {jobs}: epoch {k} completed"
            );
            assert_eq!(ea.moves, er.moves, "jobs {jobs}: epoch {k} moves");
            assert_eq!(ea.violated, er.violated, "jobs {jobs}: epoch {k} violated");
            assert_eq!(
                a.epoch_caps(k),
                r.epoch_caps(k),
                "jobs {jobs}: epoch {k} caps"
            );
        }
        assert!(
            a.fleet_stream.bytes == r.fleet_stream.bytes,
            "jobs {jobs}: fleet stream bytes diverge"
        );
    }
}

#[test]
fn fleet_audit_holds_across_twenty_seeds() {
    // Property sweep: varied fleet shapes, finite budgets from starving
    // to generous, rebalancing on, several fleet epochs per run. Every
    // fleet stream must pass every fleet invariant — including the runs
    // that overspend (honesty via cap_violation_s, not magic).
    for seed in 0..20u64 {
        let mut wspec = WorkloadSpec::oltp(600.0, 20.0);
        wspec.extents = 1024;
        let tr = wspec.generate(seed);
        let arrays = 2 + (seed % 3) as usize;
        let budget_w = 40.0 + 60.0 * (seed % 5) as f64;

        let mut spec = FleetSpec::new(
            arrays,
            TENANTS,
            config(),
            RunOptions::for_horizon(600.0),
            BudgetSchedule::constant(budget_w),
        );
        spec.fleet_epoch = SimDuration::from_secs(120.0);

        let report = if seed % 2 == 0 {
            run_fleet(&spec, &tr, &Pool::new(2), |_| BasePolicy)
        } else {
            run_fleet(&spec, &tr, &Pool::new(2), |_| hibernator())
        };
        let audit = report
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: fleet stream malformed: {e}"));
        for c in &audit.checks {
            assert!(
                c.passed,
                "seed {seed} ({arrays} arrays, {budget_w} W): {} failed: {}",
                c.name, c.detail
            );
        }
        assert_eq!(
            report.routed_requests, report.total_requests,
            "seed {seed}: placement lost requests"
        );
        let per_epoch: u64 = report.epochs.iter().map(|e| e.completed).sum();
        assert_eq!(
            per_epoch, report.completed,
            "seed {seed}: epoch completions don't tile the fleet total"
        );
    }
}
