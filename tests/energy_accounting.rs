//! Energy-conservation invariants across the whole stack.
//!
//! The ledger's attributed components must sum to the total; the sampled
//! power series must integrate back to (approximately) the same energy; and
//! analytic bounds must bracket every policy's consumption.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use diskmodel::{PowerModel, SpeedLevel};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{DrpmPolicy, TpmPolicy};
use simkit::{EnergyComponent, SimDuration};
use workload::WorkloadSpec;

const DURATION_S: f64 = 1200.0;

fn scenario() -> (ArrayConfig, workload::Trace, RunOptions) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 20.0);
    spec.extents = 1024;
    let trace = spec.generate(23);
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = 4;
    (config, trace, RunOptions::for_horizon(DURATION_S))
}

fn runs() -> Vec<(&'static str, RunReport)> {
    let (config, trace, opts) = scenario();
    let mut cfg = HibernatorConfig::for_goal(0.012);
    cfg.epoch = SimDuration::from_secs(200.0);
    vec![
        (
            "base",
            run_policy(config.clone(), BasePolicy, &trace, opts.clone()),
        ),
        (
            "tpm",
            run_policy(
                config.clone(),
                TpmPolicy::with_threshold(60.0),
                &trace,
                opts.clone(),
            ),
        ),
        (
            "drpm",
            run_policy(config.clone(), DrpmPolicy::default(), &trace, opts.clone()),
        ),
        (
            "hib",
            run_policy(config, Hibernator::new(cfg), &trace, opts),
        ),
    ]
}

#[test]
fn components_sum_to_total_for_every_policy() {
    for (name, r) in runs() {
        let sum: f64 = r.energy.breakdown().map(|(_, j)| j).sum();
        let total = r.energy.total_joules();
        assert!(
            (sum - total).abs() < 1e-6 * total.max(1.0),
            "{name}: components {sum} vs total {total}"
        );
        // Per-disk ledgers sum to the aggregate.
        let per_disk: f64 = r.per_disk_energy.iter().map(|e| e.total_joules()).sum();
        assert!(
            (per_disk - total).abs() < 1e-6 * total.max(1.0),
            "{name}: per-disk {per_disk} vs total {total}"
        );
    }
}

#[test]
fn power_series_integrates_to_total_energy() {
    for (name, r) in runs() {
        let bucket_s = r.power_series.bucket_width().as_secs();
        let integral: f64 = r
            .power_series
            .mean_points()
            .iter()
            .map(|(_, w)| w * bucket_s)
            .sum();
        let total = r.energy.total_joules();
        // The last partial bucket may be missing; allow a few percent.
        let rel = (integral - total).abs() / total;
        assert!(
            rel < 0.07,
            "{name}: series integral {integral} vs ledger {total} (rel {rel})"
        );
    }
}

#[test]
fn energy_bracketed_by_analytic_bounds() {
    let (config, _, _) = scenario();
    let pm = PowerModel::new(&config.spec);
    let n = config.disks as f64;
    // Lower bound: everything in standby the whole time (unreachable).
    let floor = pm.standby_w() * n * DURATION_S;
    // Upper bound: everything seeking at full speed the whole time.
    let ceiling = pm.seek_w(SpeedLevel(5)) * n * DURATION_S;
    for (name, r) in runs() {
        let total = r.energy.total_joules();
        assert!(total > floor, "{name}: below physical floor");
        assert!(total < ceiling, "{name}: above physical ceiling");
    }
}

/// Pulls `"key":value` out of a JSON-lines telemetry record. Good enough
/// for the flat objects the recorder writes; not a general JSON parser.
fn field(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).map(|i| i + pat.len()).unwrap_or_else(|| {
        panic!("field {key} missing from {line}");
    });
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| {
        panic!("field {key} unparsable in {line}: {e}");
    })
}

#[test]
fn telemetry_disk_summaries_reconcile_with_ledgers() {
    let (config, trace, mut opts) = scenario();
    opts.telemetry =
        Some(telemetry::TelemetryConfig::new("energy-recon").with_goal(0.012, DURATION_S * 0.1));
    let mut cfg = HibernatorConfig::for_goal(0.012);
    cfg.epoch = SimDuration::from_secs(200.0);
    let report = run_policy(config, Hibernator::new(cfg), &trace, opts);

    let stream = report.telemetry.as_ref().expect("stream captured");
    let text = std::str::from_utf8(&stream.bytes).expect("utf-8 stream");
    let disk_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("{\"ev\":\"disk\""))
        .collect();
    assert_eq!(disk_lines.len(), report.per_disk_energy.len());

    // Every per-disk, per-component joule count in the stream must match
    // the simulator's own ledger exactly (both sides print shortest
    // round-trip floats, so equality within float-print precision holds).
    let mut component_sums = [0.0f64; 6];
    for line in &disk_lines {
        let disk = field(line, "disk") as usize;
        let ledger = &report.per_disk_energy[disk];
        for (slot, c) in EnergyComponent::ALL.into_iter().enumerate() {
            let streamed = field(line, c.label());
            let expected = ledger.joules(c);
            assert!(
                (streamed - expected).abs() <= 1e-9 * expected.abs().max(1.0),
                "disk {disk} {}: stream {streamed} vs ledger {expected}",
                c.label()
            );
            component_sums[slot] += streamed;
        }
    }

    // And the per-state sums across disks must reproduce the aggregate
    // ledger's breakdown and total.
    let mut streamed_total = 0.0;
    for (slot, c) in EnergyComponent::ALL.into_iter().enumerate() {
        let expected = report.energy.joules(c);
        assert!(
            (component_sums[slot] - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "{}: disk sum {} vs aggregate {expected}",
            c.label(),
            component_sums[slot]
        );
        streamed_total += component_sums[slot];
    }
    let total = report.energy.total_joules();
    assert!(
        (streamed_total - total).abs() <= 1e-6 * total.max(1.0),
        "streamed total {streamed_total} vs ledger {total}"
    );

    // The independent auditor agrees as well.
    let outcome = telemetry::audit::audit_bytes(&stream.bytes).expect("parsable stream");
    assert!(outcome.passed(), "audit failed: {:?}", outcome.runs);
}

#[test]
fn busy_disks_spend_more_than_idle_math_alone() {
    let (config, trace, opts) = scenario();
    let pm = PowerModel::new(&config.spec);
    let report = run_policy(config.clone(), BasePolicy, &trace, opts);
    let idle_only = pm.idle_w(SpeedLevel(5)) * config.disks as f64 * DURATION_S;
    let total = report.energy.total_joules();
    assert!(
        total > idle_only,
        "service energy missing: {total} vs {idle_only}"
    );
    assert!(
        total < idle_only * 1.10,
        "light load can't add more than ~10%: {total} vs {idle_only}"
    );
}
