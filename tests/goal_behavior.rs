//! Hibernator's goal semantics, end to end: looser goals unlock more
//! savings, impossible goals degrade gracefully to Base behaviour, and the
//! guard bounds the damage of a mid-run workload shift.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::{SimDuration, SimTime};
use workload::WorkloadSpec;

const DURATION_S: f64 = 2400.0;

fn scenario() -> (ArrayConfig, workload::Trace, RunOptions) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 30.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.0;
    let trace = spec.generate(31);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    (config, trace, RunOptions::for_horizon(DURATION_S))
}

fn hib(goal_s: f64) -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    cfg.guard_window = SimDuration::from_secs(60.0);
    cfg.guard_hysteresis = SimDuration::from_secs(120.0);
    Hibernator::new(cfg)
}

fn savings(r: &RunReport, base: &RunReport) -> f64 {
    r.savings_vs(base)
}

#[test]
fn looser_goals_unlock_more_savings() {
    let (config, trace, opts) = scenario();
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let tight = run_policy(
        config.clone(),
        hib(base.response.mean() * 1.15),
        &trace,
        opts.clone(),
    );
    let loose = run_policy(config, hib(base.response.mean() * 3.0), &trace, opts);
    let s_tight = savings(&tight, &base);
    let s_loose = savings(&loose, &base);
    assert!(
        s_loose > s_tight + 0.05,
        "loose {s_loose} should comfortably beat tight {s_tight}"
    );
    assert!(
        s_loose > 0.25,
        "a 3x goal should unlock deep savings: {s_loose}"
    );
}

#[test]
fn impossible_goal_behaves_like_base() {
    let (config, trace, opts) = scenario();
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    // A goal below the zero-load service time can never be met; Hibernator
    // must fall back to (roughly) Base energy rather than thrash.
    let r = run_policy(config, hib(0.0005), &trace, opts);
    assert!(
        savings(&r, &base).abs() < 0.05,
        "impossible goal should pin the array fast: {}",
        savings(&r, &base)
    );
    assert!(r.transitions < 20, "no thrash expected: {}", r.transitions);
}

#[test]
fn guard_limits_damage_of_workload_shift() {
    // Gentle first half, 8x rate second half. Without re-optimisation the
    // slowed array would drown; the guard + epochs must keep the storm-era
    // response within a small multiple of its Base equivalent.
    let mut gentle = WorkloadSpec::oltp(DURATION_S / 2.0, 10.0);
    gentle.extents = 2048;
    let mut storm = WorkloadSpec::oltp(DURATION_S / 2.0, 80.0);
    storm.extents = 2048;
    let mut reqs = gentle.generate(41).requests;
    for mut r in storm.generate(43).requests {
        r.time = SimTime::from_secs(r.time.as_secs() + DURATION_S / 2.0);
        reqs.push(r);
    }
    let trace = workload::Trace::from_requests(reqs);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    let opts = RunOptions::for_horizon(DURATION_S);

    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let goal = base.response.mean() * 1.5;
    let r = run_policy(config, hib(goal), &trace, opts);

    let late_mean = |report: &RunReport| {
        let pts: Vec<f64> = report
            .response_series
            .mean_points()
            .into_iter()
            .filter(|(t, _)| *t > DURATION_S * 0.75)
            .map(|(_, v)| v)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let hib_late = late_mean(&r);
    let base_late = late_mean(&base);
    assert!(
        hib_late < base_late * 5.0,
        "storm-era response must stay bounded: hib {hib_late} vs base {base_late}"
    );
    assert_eq!(r.completed + r.incomplete, base.completed + base.incomplete);
}

#[test]
fn raid5_mode_works_end_to_end_with_hibernator() {
    let (mut config, trace, opts) = scenario();
    config.redundancy = array::Redundancy::Raid5Like;
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let r = run_policy(config, hib(base.response.mean() * 1.6), &trace, opts);
    // Conservation, allowing a stray request still in flight at the horizon
    // (a slow-level disk can hold the last arrival past the cut-off).
    assert_eq!(r.completed + r.incomplete, base.completed + base.incomplete);
    assert!(r.incomplete <= 2, "too many stranded: {}", r.incomplete);
    assert!(savings(&r, &base) > 0.05, "savings {}", savings(&r, &base));
}
