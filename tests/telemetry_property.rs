//! Property test: the telemetry audit holds over randomized scenarios.
//!
//! Fifty small configurations — random disk counts, rates, horizons,
//! policies, and the occasional fault storm — all run with telemetry
//! capture on, and every cross-cutting invariant the auditor knows must
//! hold on every stream. Failures print the scenario seed so the case
//! can be replayed in isolation.

use array::{run_policy, ArrayConfig, BasePolicy, Redundancy, RunOptions, RunReport};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{DrpmPolicy, TpmPolicy};
use simkit::{DetRng, SimDuration, SimTime};
use telemetry::TelemetryConfig;
use workload::WorkloadSpec;

/// One random scenario, fully determined by `seed`.
fn run_scenario(seed: u64) -> RunReport {
    let mut rng = DetRng::new(seed, "telemetry-property");
    let duration_s = rng.uniform(120.0, 400.0);
    let rate = rng.uniform(4.0, 30.0);

    let mut spec = if rng.chance(0.5) {
        WorkloadSpec::oltp(duration_s, rate)
    } else {
        WorkloadSpec::cello_like(duration_s, rate)
    };
    spec.extents = 256 + rng.below(768) as u32;
    let trace = spec.generate(rng.next_u64());

    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = 3 + rng.below(4) as usize;
    if rng.chance(0.5) {
        config.redundancy = Redundancy::Raid5Like;
    }

    let mut opts = RunOptions::for_horizon(duration_s);
    opts.series_bucket = SimDuration::from_secs(30.0);
    opts.sample_interval = SimDuration::from_secs(30.0);
    opts.migration_inflight = 1 + rng.below(3) as usize;
    if rng.chance(0.3) {
        let mut events = vec![FaultEvent {
            time: SimTime::from_secs(duration_s * rng.uniform(0.2, 0.5)),
            disk: rng.below(config.disks as u64) as usize,
            kind: FaultKind::TransientBurst {
                error_prob: rng.uniform(0.05, 0.25),
                duration_s: duration_s * 0.05,
            },
        }];
        if rng.chance(0.5) {
            events.push(FaultEvent {
                time: SimTime::from_secs(duration_s * rng.uniform(0.4, 0.7)),
                disk: rng.below(config.disks as u64) as usize,
                kind: FaultKind::DiskFailure,
            });
        }
        opts.faults = Some(FaultPlan {
            schedule: FaultSchedule::new(events),
            config: FaultConfig::default(),
        });
    }

    let goal_s = rng.uniform(0.004, 0.060);
    let warmup_s = duration_s * 0.1;
    opts.telemetry = Some(TelemetryConfig::new(format!("prop/{seed}")).with_goal(goal_s, warmup_s));

    match rng.below(4) {
        0 => run_policy(config, BasePolicy, &trace, opts),
        1 => run_policy(config, TpmPolicy::with_threshold(45.0), &trace, opts),
        2 => run_policy(config, DrpmPolicy::default(), &trace, opts),
        _ => {
            let mut cfg = HibernatorConfig::for_goal(goal_s);
            cfg.epoch = SimDuration::from_secs(duration_s / 4.0);
            run_policy(config, Hibernator::new(cfg), &trace, opts)
        }
    }
}

#[test]
fn audit_invariants_hold_over_random_scenarios() {
    for seed in 0..50u64 {
        let report = run_scenario(seed);
        let stream = report
            .telemetry
            .as_ref()
            .unwrap_or_else(|| panic!("seed {seed}: no telemetry stream captured"));
        assert!(!stream.bytes.is_empty(), "seed {seed}: empty stream");
        let outcome = telemetry::audit::audit_bytes(&stream.bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: malformed stream: {e}"));
        assert_eq!(outcome.runs.len(), 1, "seed {seed}: expected one run");
        let run = &outcome.runs[0];
        for check in &run.checks {
            assert!(
                check.passed,
                "seed {seed}: check {} failed: {}",
                check.name, check.detail
            );
        }
    }
}

#[test]
fn stream_capture_is_deterministic_per_seed() {
    let a = run_scenario(7);
    let b = run_scenario(7);
    assert_eq!(
        a.telemetry.as_ref().map(|s| &s.bytes),
        b.telemetry.as_ref().map(|s| &s.bytes),
        "same seed must yield a byte-identical stream"
    );
}
