//! Differential lockdown: a *disabled* controller cache is not merely
//! "similar to" the pre-cache simulator — it IS the pre-cache simulator.
//!
//! `RunOptions { cache: None }` and `cache: Some(capacity 0)` must produce
//! bit-identical runs for every headline policy: the same report numerics,
//! the same event count, and the same telemetry stream bytes. This is what
//! lets the cache subsystem ride in the request path without invalidating
//! a single pre-existing golden or experiment result.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::{Trace, WorkloadSpec};

const DURATION_S: f64 = 900.0;

fn trace(seed: u64) -> Trace {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 25.0);
    spec.extents = 1024;
    spec.zipf_theta = 1.0;
    spec.generate(seed)
}

fn config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    c
}

fn opts(label: &str, cache: Option<cache::CacheConfig>) -> RunOptions {
    let mut o = RunOptions::for_horizon(DURATION_S);
    o.series_bucket = SimDuration::from_secs(60.0);
    o.sample_interval = SimDuration::from_secs(60.0);
    o.cache = cache;
    o.telemetry = Some(TelemetryConfig::new(label).with_goal(0.02, 90.0));
    o
}

/// Runs `policy_ix` (0..6) under `o`; each index is one headline policy.
fn run_ix(policy_ix: usize, o: RunOptions, trace: &Trace) -> RunReport {
    match policy_ix {
        0 => run_policy(config(), BasePolicy, trace, o),
        1 => run_policy(config(), TpmPolicy::competitive(), trace, o),
        2 => run_policy(config(), DrpmPolicy::default(), trace, o),
        3 => run_policy(config(), PdcPolicy::default(), trace, o),
        4 => run_policy(
            maid_array_config(config(), 2),
            MaidPolicy::new(MaidConfig {
                cache_disks: 2,
                cache_chunks_per_disk: 256,
                tpm_threshold_s: Some(120.0),
            }),
            trace,
            o,
        ),
        5 => {
            let mut cfg = HibernatorConfig::for_goal(0.02);
            cfg.epoch = SimDuration::from_secs(180.0);
            cfg.heat_tau = SimDuration::from_secs(180.0);
            run_policy(config(), Hibernator::new(cfg), trace, o)
        }
        _ => unreachable!(),
    }
}

const POLICY_NAMES: [&str; 6] = ["Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator"];

#[test]
fn zero_capacity_cache_is_bit_identical_to_no_cache() {
    let trace = trace(7);
    for (ix, name) in POLICY_NAMES.iter().enumerate() {
        let mut off = run_ix(ix, opts(name, None), &trace);
        let mut zero = run_ix(
            ix,
            opts(name, Some(cache::CacheConfig::with_capacity(0))),
            &trace,
        );

        // A capacity-0 config normalizes to "no cache at all".
        assert!(off.cache.is_none(), "{name}: cache-off report has stats");
        assert!(zero.cache.is_none(), "{name}: capacity-0 report has stats");

        // Report numerics, exact — these are f64s from the identical
        // event sequence, so equality is the correct comparison.
        assert_eq!(off.completed, zero.completed, "{name}: completed");
        assert_eq!(off.incomplete, zero.incomplete, "{name}: incomplete");
        assert_eq!(off.fg_sectors, zero.fg_sectors, "{name}: fg_sectors");
        assert_eq!(off.transitions, zero.transitions, "{name}: transitions");
        assert_eq!(
            off.events_processed, zero.events_processed,
            "{name}: events_processed"
        );
        assert_eq!(
            off.energy.total_joules(),
            zero.energy.total_joules(),
            "{name}: energy"
        );
        assert_eq!(
            off.response.mean(),
            zero.response.mean(),
            "{name}: mean response"
        );
        assert_eq!(
            off.response.count(),
            zero.response.count(),
            "{name}: response count"
        );
        assert_eq!(
            off.migration.raw_writes, zero.migration.raw_writes,
            "{name}: raw writes"
        );

        // The telemetry streams must match byte for byte: same events, in
        // the same order, with the same formatted floats.
        let a = off.telemetry.take().expect("stream captured").bytes;
        let b = zero.telemetry.take().expect("stream captured").bytes;
        assert!(
            a == b,
            "{name}: telemetry streams diverge ({} vs {} bytes)",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn enabled_cache_changes_the_run_but_conserves_requests() {
    // Sanity companion: a *real* cache must actually do something (else
    // the differential above proves nothing), while still completing the
    // same foreground work.
    let trace = trace(7);
    let off = run_ix(0, opts("Base", None), &trace);
    let on = run_ix(
        0,
        opts("Base", Some(cache::CacheConfig::with_capacity(1024))),
        &trace,
    );
    let stats = on.cache.expect("enabled cache reports stats");
    assert!(stats.read_hits > 0, "hot OLTP set should hit");
    assert_eq!(
        off.completed + off.incomplete,
        on.completed + on.incomplete,
        "cache must not lose foreground requests"
    );
    assert!(
        on.response.mean() < off.response.mean(),
        "DRAM hits should cut mean response on an always-on array"
    );
}
