//! The policy-conformance battery (see DESIGN.md §17).
//!
//! Every registered [`MigrationPolicy`] — the filtered analytic planner,
//! LFU, the bandit classifier, and the SleepScale joint optimizer — must
//! honor the shared [`MigrationConfig`] contract regardless of how it
//! ranks chunks internally:
//!
//! * a chunk whose move committed is never re-proposed inside `grace`;
//! * the host's per-round budget caps the proposal;
//! * dead disks never receive chunks;
//! * identical observation histories yield identical proposals;
//! * a full simulated run emits `policy` telemetry and survives the
//!   replay audit, including the migration-grace invariant.
//!
//! New policies join the battery by adding a factory to [`registry`].

use array::{
    run_policy, ArrayConfig, ArrayState, ArrayStats, ChunkId, MigrationEngine, MigrationJob,
    RemapTable, RunOptions,
};
use diskmodel::{Disk, SpeedLevel};
use hibernator::{
    AnalyticPolicy, Hibernator, HibernatorConfig, MigrationConfig, MigrationPolicy,
    PolicyObservation,
};
use policies::{BanditPolicy, LfuPolicy, SleepScalePolicy};
use simkit::{SimDuration, SimTime};
use telemetry::TelemetryConfig;
use workload::WorkloadSpec;

type PolicyFactory = fn() -> Box<dyn MigrationPolicy>;

/// Every registered migration policy, by factory (each test needs fresh
/// instances).
fn registry() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("analytic", || {
            Box::new(AnalyticPolicy::with_config(MigrationConfig::adaptive()))
        }),
        ("lfu", || Box::new(LfuPolicy::new())),
        ("bandit", || Box::new(BanditPolicy::new())),
        ("sleepscale", || Box::new(SleepScalePolicy::new())),
    ]
}

fn mk_state(disks: usize, chunks: u32) -> ArrayState {
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = disks;
    config.volume_chunks = chunks;
    let remap = RemapTable::striped(&config);
    let ds = (0..disks)
        .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
        .collect();
    let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
    ArrayState {
        config,
        disks: ds,
        remap,
        migrator: MigrationEngine::new(2),
        stats,
        telemetry: telemetry::Recorder::disabled(),
        wake_marks: array::WakeMarks::new(disks),
    }
}

/// Two fast disks, two slow disks.
fn split_levels() -> Vec<SpeedLevel> {
    vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)]
}

/// Heat-ordered ranking + aligned rates: `hot` chunks first at high rate.
fn ranked(chunks: u32, hot: &[u32]) -> (Vec<ChunkId>, Vec<f64>) {
    let mut ranking: Vec<ChunkId> = hot.iter().copied().map(ChunkId).collect();
    for c in 0..chunks {
        if !hot.contains(&c) {
            ranking.push(ChunkId(c));
        }
    }
    let rates: Vec<f64> = (0..chunks as usize)
        .map(|i| if i < hot.len() { 10.0 } else { 0.1 })
        .collect();
    (ranking, rates)
}

/// Feeds each chunk `weight(c)` accesses so count-based policies (LFU)
/// and reward-based ones (bandit) have matching internal statistics.
fn warm(policy: &mut dyn MigrationPolicy, now: SimTime, chunks: u32, hot: &[u32]) {
    for c in 0..chunks {
        let n = if hot.contains(&c) { 8 } else { 1 };
        for _ in 0..n {
            policy.observe_access(now, ChunkId(c));
        }
    }
}

fn observe<'a>(
    now: SimTime,
    state: &'a ArrayState,
    ranking: &'a [ChunkId],
    rates: &'a [f64],
    levels: &'a [SpeedLevel],
    budget: usize,
) -> PolicyObservation<'a> {
    PolicyObservation {
        now,
        state,
        ranking,
        rates,
        disk_levels: levels,
        budget,
        goal_s: 0.05,
    }
}

#[test]
fn committed_chunks_are_never_reproposed_within_grace() {
    for (name, mk) in registry() {
        let mut p = mk();
        assert!(
            p.config().grace.as_secs() > 0.0,
            "{name}: battery requires a real grace period"
        );
        let mut state = mk_state(4, 16);
        let levels = split_levels();
        // Chunks striped onto the slow disks are hot: the policy should
        // want them on the fast tier.
        let hot: Vec<u32> = (0..16).filter(|c| c % 4 >= 2).collect();
        let (ranking, rates) = ranked(16, &hot);

        // Round until the policy proposes something (the bandit needs a
        // few reward rounds before it moves anyone), then commit a couple
        // of its proposals by hand.
        let mut committed = Vec::new();
        let mut when = SimTime::ZERO;
        for round in 0..10u32 {
            when = SimTime::from_secs(f64::from(round) * 10.0);
            warm(p.as_mut(), when, 16, &hot);
            let jobs = p.propose(&observe(when, &state, &ranking, &rates, &levels, 100));
            for j in &jobs {
                if committed.len() == 2 {
                    break;
                }
                if let MigrationJob::Relocate { chunk, dst } = *j {
                    if let Some(slot) = state.remap.reserve_slot(dst) {
                        state.remap.relocate(chunk, dst, slot);
                        committed.push(chunk);
                    }
                }
            }
            if !committed.is_empty() {
                break;
            }
        }
        assert!(!committed.is_empty(), "{name}: no proposals to commit");

        // Invert the world: the committed chunks go stone cold, so every
        // policy now wants them back on the slow tier — but they are
        // inside their grace period.
        let cold: Vec<u32> = (0..16).filter(|c| !hot.contains(c)).collect();
        let (ranking2, rates2) = ranked(16, &cold);
        let later = when + SimDuration::from_secs(60.0);
        warm(p.as_mut(), later, 16, &cold);
        let jobs2 = p.propose(&observe(later, &state, &ranking2, &rates2, &levels, 100));
        for j in &jobs2 {
            if let MigrationJob::Relocate { chunk, .. } = j {
                assert!(
                    !committed.contains(chunk),
                    "{name}: re-proposed {chunk:?} {0:.0} s after its commit (grace {1:.0} s)",
                    60.0,
                    p.config().grace.as_secs()
                );
            }
        }
        if name == "analytic" {
            let d = p.decision().expect("non-vacuous analytic reports");
            assert!(
                d.deferred_grace > 0,
                "analytic: the inverted ranking must have tried to demote \
                 a committed chunk ({d:?})"
            );
        }
    }
}

#[test]
fn host_budget_caps_every_proposal() {
    for (name, mk) in registry() {
        let mut p = mk();
        let state = mk_state(4, 32);
        let levels = split_levels();
        let hot: Vec<u32> = (0..32).filter(|c| c % 4 >= 2).collect();
        let (ranking, rates) = ranked(32, &hot);
        warm(p.as_mut(), SimTime::ZERO, 32, &hot);
        for budget in [0usize, 1, 3] {
            let jobs = p.propose(&observe(
                SimTime::from_secs(1.0),
                &state,
                &ranking,
                &rates,
                &levels,
                budget,
            ));
            assert!(
                jobs.len() <= budget,
                "{name}: {} jobs over budget {budget}",
                jobs.len()
            );
        }
    }
}

#[test]
fn dead_disks_never_receive_chunks() {
    for (name, mk) in registry() {
        let mut p = mk();
        let mut state = mk_state(4, 16);
        let _ = state.disks[0].fail(SimTime::ZERO);
        let mut remap = std::mem::replace(&mut state.remap, RemapTable::striped(&state.config));
        let _ = state
            .migrator
            .note_disk_failed(SimTime::ZERO, array::DiskId(0), &mut remap);
        state.remap = remap;
        let levels = split_levels();
        let hot: Vec<u32> = (0..16).filter(|c| c % 4 >= 2).collect();
        let (ranking, rates) = ranked(16, &hot);
        warm(p.as_mut(), SimTime::ZERO, 16, &hot);
        let jobs = p.propose(&observe(
            SimTime::ZERO,
            &state,
            &ranking,
            &rates,
            &levels,
            100,
        ));
        for j in &jobs {
            if let MigrationJob::Relocate { dst, .. } = j {
                assert_ne!(dst.index(), 0, "{name}: targeted the dead disk");
            }
        }
    }
}

#[test]
fn identical_histories_yield_identical_proposals() {
    for (name, mk) in registry() {
        let (mut a, mut b) = (mk(), mk());
        let state = mk_state(4, 24);
        let levels = split_levels();
        let hot: Vec<u32> = (0..24).filter(|c| c % 4 >= 2).collect();
        let (ranking, rates) = ranked(24, &hot);
        for round in 0..5u32 {
            let now = SimTime::from_secs(f64::from(round) * 120.0);
            warm(a.as_mut(), now, 24, &hot);
            warm(b.as_mut(), now, 24, &hot);
            let ja = a.propose(&observe(now, &state, &ranking, &rates, &levels, 50));
            let jb = b.propose(&observe(now, &state, &ranking, &rates, &levels, 50));
            assert_eq!(ja, jb, "{name}: round {round} diverged");
        }
    }
}

#[test]
fn full_runs_emit_policy_events_and_pass_the_audit() {
    let duration_s = 1800.0;
    let mut spec = WorkloadSpec::oltp(duration_s, 30.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.0;
    let trace = spec.generate(17);
    for (name, mk) in registry() {
        let mut config = ArrayConfig::default_for_volume(2 << 30);
        config.disks = 8;
        config.seed = 17;
        let mut cfg = HibernatorConfig::for_goal(0.05);
        cfg.epoch = SimDuration::from_secs(300.0);
        cfg.heat_tau = SimDuration::from_secs(300.0);
        let mut opts = RunOptions::for_horizon(duration_s);
        opts.telemetry = Some(TelemetryConfig::new(format!("conformance-{name}")));
        let mut report = run_policy(config, Hibernator::with_policy(cfg, mk()), &trace, opts);

        let stream = report.telemetry.take().expect("stream captured");
        let text = String::from_utf8_lossy(&stream.bytes).into_owned();
        assert!(
            text.contains("\"ev\":\"policy\""),
            "{name}: no PolicyDecision events in the stream"
        );
        let outcome = telemetry::audit::audit_bytes(&stream.bytes).expect("well-formed stream");
        assert!(
            outcome.passed(),
            "{name}: audit failed: {:?}",
            outcome
                .runs
                .iter()
                .flat_map(|r| r.checks.iter().filter(|c| !c.passed))
                .collect::<Vec<_>>()
        );
        assert!(
            outcome.runs.iter().all(|r| r
                .checks
                .iter()
                .any(|c| c.name == "migration-grace" && c.passed)),
            "{name}: the migration-grace check must have run"
        );
    }
}
