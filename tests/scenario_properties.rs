//! Property: every adversarial scenario combinator produces runs that
//! pass the full cross-cutting telemetry audit — energy conservation,
//! dead-disk serving, migration concurrency, goal-violation refit — over
//! a 20-seed sweep. The scenarios exist to stress policies into their
//! corner cases (surges, inverted skew, cold write floods, cache-poison
//! scans); this sweep pins that none of those corners can push the
//! simulator itself off its invariants, at any seed.

use array::{run_policy_streamed, ArrayConfig, RunOptions};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::SimDuration;
use telemetry::TelemetryConfig;
use workload::{Scenario, WorkloadSpec};

const DURATION_S: f64 = 600.0;
const SEEDS: u64 = 20;

fn spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 10.0);
    spec.extents = 512;
    spec
}

fn config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    c
}

fn hibernator() -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(0.02);
    cfg.epoch = SimDuration::from_secs(120.0);
    cfg.heat_tau = SimDuration::from_secs(120.0);
    Hibernator::new(cfg)
}

/// Runs `scenario` under Hibernator (the policy exercising the most
/// invariants: migration, refit, multi-speed transitions) at every seed
/// and audits each run's telemetry stream.
fn audit_sweep(scenario: Scenario) {
    let spec = spec();
    for seed in 0..SEEDS {
        let label = format!("{}/s{seed:02}", scenario.name());
        let mut opts = RunOptions::for_horizon(DURATION_S);
        opts.telemetry = Some(TelemetryConfig::new(&label).with_goal(0.02, 60.0));
        let mut report =
            run_policy_streamed(config(), hibernator(), scenario.apply(&spec, seed), opts);
        let stream = report.telemetry.take().expect("telemetry stream");
        let outcome = telemetry::audit::audit_bytes(&stream.bytes)
            .unwrap_or_else(|e| panic!("{label}: malformed stream: {e}"));
        assert!(!outcome.runs.is_empty(), "{label}: no run in stream");
        for run in &outcome.runs {
            for check in &run.checks {
                assert!(
                    check.passed,
                    "{label}: audit check {} failed — {}",
                    check.name, check.detail
                );
            }
        }
    }
}

/// The four standard scenarios, each as its own test so the sweeps run
/// on separate test threads.
fn standard(i: usize) -> Scenario {
    Scenario::standard_suite(DURATION_S)[i]
}

#[test]
fn flash_crowd_passes_audit_across_seeds() {
    audit_sweep(standard(0));
}

#[test]
fn popularity_flip_passes_audit_across_seeds() {
    audit_sweep(standard(1));
}

#[test]
fn write_flood_passes_audit_across_seeds() {
    audit_sweep(standard(2));
}

#[test]
fn scan_poison_passes_audit_across_seeds() {
    audit_sweep(standard(3));
}
