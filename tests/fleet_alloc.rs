//! Allocation lockdown for the fleet driver's steady path.
//!
//! The persistent-worker driver preallocates every controller-side buffer
//! from the epoch count and ping-pongs command/grant buffers with the
//! workers, so the *epoch loop itself* performs zero heap allocations:
//! doubling the number of fleet epochs over the same horizon must not add
//! allocations beyond the planning phase's per-epoch rows (the heat
//! matrix and placement plan each keep one row per epoch, built before
//! the loop starts) plus amortized simulator-internal growth.
//!
//! The probe holds everything else fixed: same trace, same horizon, Base
//! policy (whose `set_power_cap` is a no-op, so per-epoch cap grants
//! exercise the whole arbiter path without perturbing the simulations),
//! rebalancing off (constant placement rows — routing is identical at
//! any epoch cadence). The only difference between the two runs is how
//! many times the arbiter loop executes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use array::{ArrayConfig, BasePolicy, RunOptions};
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use parallel::Pool;
use workload::{Trace, WorkloadSpec};

/// [`System`] with a global allocation counter.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

const HORIZON_S: f64 = 600.0;
const ARRAYS: usize = 3;

fn trace() -> Trace {
    let mut spec = WorkloadSpec::oltp(HORIZON_S, 20.0);
    spec.extents = 1024;
    spec.generate(42)
}

fn spec(epoch_s: f64) -> FleetSpec {
    let mut c = ArrayConfig::default_for_volume(2 << 30);
    c.disks = 6;
    let mut s = FleetSpec::new(
        ARRAYS,
        8,
        c,
        RunOptions::for_horizon(HORIZON_S),
        BudgetSchedule::constant(300.0),
    );
    s.fleet_epoch = simkit::SimDuration::from_secs(epoch_s);
    s.rebalance = false;
    s
}

/// Allocations performed by one fleet run at the given epoch cadence.
fn allocs_for(epoch_s: f64, pool: &Pool) -> u64 {
    let tr = trace();
    let s = spec(epoch_s);
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = run_fleet(&s, &tr, pool, |_| BasePolicy);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(report.completed > 0, "probe run did no work");
    after - before
}

#[test]
fn epoch_loop_does_not_allocate_per_epoch() {
    let pool = Pool::new(2);
    // Warm-up: lazy one-time initialization (thread-local buffers, trace
    // single-flight state) must not be billed to either measured run.
    let _ = allocs_for(150.0, &pool);

    let base = allocs_for(150.0, &pool); // 4 epochs
    let doubled = allocs_for(75.0, &pool); // 8 epochs
    let extra_epochs = 4u64;
    let marginal = doubled.saturating_sub(base);
    let per_epoch = marginal as f64 / extra_epochs as f64;
    println!(
        "allocs: {base} @ 4 epochs, {doubled} @ 8 epochs, \
         marginal {marginal} ({per_epoch:.1}/epoch)"
    );

    // Planning keeps one heat row and one placement row per epoch, and
    // each serialized grant/epoch event may land one amortized growth
    // realloc; everything inside the loop itself is preallocated. A
    // budget of 8 allocations per marginal epoch is far below the old
    // per-epoch `Pool::map` round-trip (job boxing, result vectors, and
    // fresh observation/cap vectors every epoch) while leaving room for
    // allocator noise.
    assert!(
        per_epoch <= 8.0,
        "steady-state fleet epochs allocate too much: {per_epoch:.1}/epoch \
         ({marginal} allocations across {extra_epochs} extra epochs)"
    );
}
