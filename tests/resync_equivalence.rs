//! Property: the incremental (dirty-disk) wake resync is observationally
//! identical to the reference full-scan resync. For randomized event
//! sequences — varied workloads, seeds, policies (including one that
//! churns spindle speeds from the per-event hooks), redundancy, and fault
//! schedules — running the same scenario with
//! [`RunOptions::reference_full_resync`] on and off must produce
//! bit-identical [`RunReport`] numerics AND byte-identical telemetry
//! streams.
//!
//! The full scan pushes a wake event only for disks whose next event time
//! moved; the incremental path visits exactly the disks handlers marked
//! (a superset of the changed ones) in the same ascending order — so the
//! push sequences, sequence numbers, and everything downstream agree.

use array::{run_policy, ArrayConfig, ArrayState, PowerPolicy, Redundancy, RunOptions, RunReport};
use diskmodel::{Completion, SpeedLevel, SpinTarget};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use hibernator::{Hibernator, HibernatorConfig};
use policies::TpmPolicy;
use simkit::{SimDuration, SimTime};
use workload::{VolumeRequest, WorkloadSpec};

/// A policy that changes spindle speeds from the *per-event* hooks (the
/// paths the conservative `mark_all` after tick/init does not cover), via
/// the mandatory [`ArrayState::request_speed`] wrapper. Deterministic:
/// driven by event counters, not time or randomness.
#[derive(Default)]
struct ChurnSpeed {
    arrivals: u64,
    completions: u64,
}

impl PowerPolicy for ChurnSpeed {
    fn name(&self) -> &str {
        "ChurnSpeed"
    }

    fn on_volume_arrival(
        &mut self,
        now: SimTime,
        _req: &VolumeRequest,
        _chunks: &[array::ChunkId],
        state: &mut ArrayState,
    ) {
        self.arrivals += 1;
        if self.arrivals.is_multiple_of(13) {
            let d = (self.arrivals / 13) as usize % state.disks.len();
            if !state.disks[d].has_failed() {
                state.request_speed(now, d, SpinTarget::Level(SpeedLevel(0)));
            }
        }
    }

    fn on_completion(
        &mut self,
        now: SimTime,
        _comp: &Completion,
        _volume_response_s: Option<f64>,
        state: &mut ArrayState,
    ) {
        self.completions += 1;
        if self.completions.is_multiple_of(17) {
            let d = (self.completions / 17) as usize % state.disks.len();
            let top = state.config.spec.top_level();
            if !state.disks[d].has_failed() {
                state.request_speed(now, d, SpinTarget::Level(top));
            }
        } else if self.completions.is_multiple_of(29) {
            let d = (self.completions / 29) as usize % state.disks.len();
            if !state.disks[d].has_failed() {
                state.request_speed(now, d, SpinTarget::Standby);
            }
        }
    }
}

/// Scripted faults exercising every fault-handler marking path.
fn fault_plan(horizon_s: f64) -> FaultPlan {
    let at = |f: f64| SimTime::from_secs(horizon_s * f);
    FaultPlan {
        schedule: FaultSchedule::new(vec![
            FaultEvent {
                time: at(0.2),
                disk: 1,
                kind: FaultKind::SlowTransition {
                    factor: 3.0,
                    duration_s: horizon_s * 0.1,
                },
            },
            FaultEvent {
                time: at(0.3),
                disk: 2,
                kind: FaultKind::TransientBurst {
                    error_prob: 0.2,
                    duration_s: horizon_s * 0.05,
                },
            },
            FaultEvent {
                time: at(0.45),
                disk: 2,
                kind: FaultKind::DiskFailure,
            },
        ]),
        config: FaultConfig::default(),
    }
}

/// Everything numeric a run reports, bit-exact.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    vec![
        r.completed,
        r.incomplete,
        r.events_processed,
        r.transitions,
        r.energy.total_joules().to_bits(),
        r.response.mean().to_bits(),
        r.response.raw_second_moment().to_bits(),
        r.service.mean().to_bits(),
        r.fg_sectors,
        r.migration.committed,
        r.migration.aborted,
        r.migration.rebuilt,
        r.faults.lost_requests,
        r.faults.degraded_redirects,
        r.faults.rebuild_chunks,
    ]
}

/// Runs `mk_policy()` twice over the same scenario — incremental vs
/// reference resync — with telemetry capture on, and asserts reports and
/// streams agree exactly.
fn assert_equivalent<P: PowerPolicy + Send>(
    label: &str,
    config: ArrayConfig,
    trace: &workload::Trace,
    mut opts: RunOptions,
    mk_policy: impl Fn() -> P,
) {
    opts.telemetry = Some(telemetry::TelemetryConfig::new(label).with_goal(0.05, 60.0));
    let mut dirty_opts = opts.clone();
    dirty_opts.reference_full_resync = false;
    let mut full_opts = opts;
    full_opts.reference_full_resync = true;

    let mut dirty = run_policy(config.clone(), mk_policy(), trace, dirty_opts);
    let mut full = run_policy(config, mk_policy(), trace, full_opts);

    assert_eq!(
        fingerprint(&dirty),
        fingerprint(&full),
        "{label}: dirty-disk resync diverged from full scan"
    );
    let ds = dirty.telemetry.take().expect("dirty stream");
    let fs = full.telemetry.take().expect("full stream");
    assert_eq!(
        ds.bytes, fs.bytes,
        "{label}: telemetry streams differ between resync modes"
    );
}

fn small_config(seed: u64, disks: usize) -> ArrayConfig {
    let mut config = ArrayConfig::default_for_volume(1 << 30);
    config.disks = disks;
    config.seed = seed;
    config
}

#[test]
fn base_and_churn_policies_match_reference() {
    for seed in [11u64, 12, 13] {
        let mut spec = WorkloadSpec::oltp(600.0, 30.0);
        spec.extents = 1024;
        let trace = spec.generate(seed);
        let config = small_config(seed, 4);
        let opts = RunOptions::for_horizon(600.0);
        assert_equivalent(
            &format!("base-{seed}"),
            config.clone(),
            &trace,
            opts.clone(),
            || array::BasePolicy,
        );
        assert_equivalent(&format!("churn-{seed}"), config, &trace, opts, || {
            ChurnSpeed::default()
        });
    }
}

#[test]
fn managed_policies_match_reference() {
    for (seed, disks) in [(21u64, 4), (22, 6)] {
        let spec = WorkloadSpec::cello_like(900.0, 25.0);
        let trace = spec.generate(seed);
        let mut config = ArrayConfig::default_for_volume(spec.footprint_sectors() * 512);
        config.disks = disks;
        config.seed = seed;
        let opts = RunOptions::for_horizon(900.0);
        assert_equivalent(
            &format!("tpm-{seed}"),
            config.clone(),
            &trace,
            opts.clone(),
            TpmPolicy::competitive,
        );
        assert_equivalent(&format!("hib-{seed}"), config, &trace, opts, || {
            let mut cfg = HibernatorConfig::for_goal(0.015);
            cfg.epoch = SimDuration::from_secs(180.0);
            cfg.heat_tau = SimDuration::from_secs(180.0);
            Hibernator::new(cfg)
        });
    }
}

#[test]
fn faulted_raid5_runs_match_reference() {
    for seed in [31u64, 32] {
        let mut spec = WorkloadSpec::oltp(900.0, 40.0);
        spec.extents = 1024;
        let trace = spec.generate(seed);
        let mut config = small_config(seed, 6);
        config.redundancy = Redundancy::Raid5Like;
        let mut opts = RunOptions::for_horizon(900.0);
        opts.faults = Some(fault_plan(900.0));
        assert_equivalent(
            &format!("fault-churn-{seed}"),
            config.clone(),
            &trace,
            opts.clone(),
            ChurnSpeed::default,
        );
        assert_equivalent(&format!("fault-tpm-{seed}"), config, &trace, opts, || {
            TpmPolicy::with_threshold(120.0)
        });
    }
}
