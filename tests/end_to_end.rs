//! Cross-crate integration: the qualitative orderings of the paper's
//! evaluation must hold on miniature end-to-end simulations.
//!
//! These are the "shape" claims from DESIGN.md §6, checked at a scale small
//! enough for debug-mode CI: Hibernator saves energy while staying near the
//! goal; DRPM saves more but degrades response; TPM saves ~nothing under
//! steady load; FixedSlow brackets everything.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use diskmodel::SpeedLevel;
use hibernator::{Hibernator, HibernatorConfig};
use policies::{DrpmPolicy, FixedSpeed, TpmPolicy};
use simkit::SimDuration;
use workload::WorkloadSpec;

const DURATION_S: f64 = 2400.0;

fn scenario() -> (ArrayConfig, workload::Trace, RunOptions) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 30.0);
    spec.extents = 2048; // 2 GiB footprint
    spec.zipf_theta = 1.0;
    let trace = spec.generate(17);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    (config, trace, RunOptions::for_horizon(DURATION_S))
}

fn hibernator(goal_s: f64) -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(300.0);
    cfg.heat_tau = SimDuration::from_secs(300.0);
    // Scale the guard to the shortened epochs.
    cfg.guard_window = SimDuration::from_secs(60.0);
    cfg.guard_hysteresis = SimDuration::from_secs(120.0);
    Hibernator::new(cfg)
}

fn base_run() -> (ArrayConfig, workload::Trace, RunOptions, RunReport) {
    let (config, trace, opts) = scenario();
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    (config, trace, opts, base)
}

/// Median of the per-bucket mean responses after warm-up — robust to the
/// isolated reconfiguration-transient buckets that dominate a short run's
/// arithmetic mean.
fn steady_median(report: &RunReport, warmup_s: f64) -> f64 {
    let mut pts: Vec<f64> = report
        .response_series
        .mean_points()
        .into_iter()
        .filter(|(t, _)| *t > warmup_s)
        .map(|(_, v)| v)
        .collect();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    pts[pts.len() / 2]
}

#[test]
fn every_policy_completes_the_workload() {
    let (config, trace, opts, base) = base_run();
    let goal = base.response.mean() * 1.5;
    for (name, report) in [
        (
            "tpm",
            run_policy(
                config.clone(),
                TpmPolicy::competitive(),
                &trace,
                opts.clone(),
            ),
        ),
        (
            "drpm",
            run_policy(config.clone(), DrpmPolicy::default(), &trace, opts.clone()),
        ),
        (
            "hib",
            run_policy(config.clone(), hibernator(goal), &trace, opts.clone()),
        ),
        (
            "slow",
            run_policy(config, FixedSpeed::new(SpeedLevel(0)), &trace, opts),
        ),
    ] {
        assert_eq!(
            report.completed + report.incomplete,
            base.completed + base.incomplete,
            "{name} lost requests"
        );
        assert!(
            report.incomplete <= 5,
            "{name} left {} requests stranded",
            report.incomplete
        );
    }
}

#[test]
fn hibernator_saves_energy_near_goal() {
    let (config, trace, opts, base) = base_run();
    let goal = base.response.mean() * 1.6;
    let hib = run_policy(config, hibernator(goal), &trace, opts);
    let savings = hib.savings_vs(&base);
    assert!(savings > 0.10, "savings {savings}");
    // Whole-run mean includes reconfiguration transients (excluded from
    // goal accounting by design); the *typical* steady bucket must respect
    // the goal with modest slack.
    let med = steady_median(&hib, DURATION_S * 0.3);
    assert!(med <= goal * 1.2, "steady median {med} vs goal {goal}");
}

#[test]
fn drpm_saves_more_but_degrades_more() {
    let (config, trace, opts, base) = base_run();
    let goal = base.response.mean() * 1.6;
    let hib = run_policy(config.clone(), hibernator(goal), &trace, opts.clone());
    let drpm = run_policy(config, DrpmPolicy::default(), &trace, opts);
    assert!(
        drpm.savings_vs(&base) > hib.savings_vs(&base),
        "goal-less DRPM should out-save goal-bound Hibernator here"
    );
    let drpm_med = steady_median(&drpm, DURATION_S * 0.3);
    let hib_med = steady_median(&hib, DURATION_S * 0.3);
    assert!(
        drpm_med > hib_med * 1.5,
        "…by paying in response time: drpm {drpm_med} vs hib {hib_med}"
    );
}

#[test]
fn tpm_saves_nothing_under_steady_load() {
    let (config, trace, opts, base) = base_run();
    let tpm = run_policy(config, TpmPolicy::competitive(), &trace, opts);
    assert!(
        tpm.savings_vs(&base).abs() < 0.05,
        "steady OLTP leaves no idleness for TPM: {}",
        tpm.savings_vs(&base)
    );
}

#[test]
fn fixed_slow_brackets_energy_and_latency() {
    let (config, trace, opts, base) = base_run();
    let goal = base.response.mean() * 1.6;
    let hib = run_policy(config.clone(), hibernator(goal), &trace, opts.clone());
    let slow = run_policy(config, FixedSpeed::new(SpeedLevel(0)), &trace, opts);
    // FixedSlow is the energy floor among always-spinning configurations…
    assert!(slow.energy.total_joules() < hib.energy.total_joules());
    assert!(slow.energy.total_joules() < base.energy.total_joules() * 0.5);
    // …and the latency ceiling.
    assert!(slow.response.mean() > base.response.mean() * 1.5);
}

#[test]
fn migration_actually_moves_data_to_fast_disks() {
    let (config, trace, opts, base) = base_run();
    let goal = base.response.mean() * 1.6;
    let hib = run_policy(config, hibernator(goal), &trace, opts);
    assert!(
        hib.migration.committed > 20,
        "expected real migration traffic: {:?}",
        hib.migration
    );
    assert!(
        hib.energy.joules(simkit::EnergyComponent::Migration) > 0.0,
        "migration energy must be attributed"
    );
}
