//! The M/G/1 predictor must track the simulator within the accuracy the
//! allocator relies on (F12 at miniature scale): for a fixed-speed array
//! under open-loop Poisson-ish load, predicted mean response from measured
//! service moments lands within a modest band of the measured mean.

use array::{run_policy, ArrayConfig, RunOptions};
use diskmodel::SpeedLevel;
use hibernator::mg1_response;
use policies::FixedSpeed;
use workload::WorkloadSpec;

const DURATION_S: f64 = 1200.0;

fn validate_level(level: usize, rate: f64) -> (f64, f64) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, rate);
    spec.extents = 2048;
    spec.sequential_fraction = 0.0; // keep arrivals memoryless per disk
    let trace = spec.generate(61);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    let disks = config.disks as f64;
    // Horizon grace period: a request arriving in the last instants of the
    // trace may legitimately still be in service at DURATION_S on a slow
    // level; give it room to drain rather than calling that saturation.
    let r = run_policy(
        config,
        FixedSpeed::new(SpeedLevel(level)),
        &trace,
        RunOptions::for_horizon(DURATION_S + 60.0),
    );
    assert_eq!(r.incomplete, 0, "saturated at level {level} rate {rate}");
    let lambda = r.service.count() as f64 / DURATION_S / disks;
    let predicted = mg1_response(lambda, r.service.mean(), r.service.raw_second_moment());
    // Steady-state measured mean: skip the first minute, which contains the
    // initial L5 → level ramp (requests queue behind a 6–8 s spindle ramp,
    // an artefact of starting from full speed, not of the queueing model).
    let steady: Vec<f64> = r
        .response_series
        .mean_points()
        .into_iter()
        .filter(|(t, _)| *t > 60.0)
        .map(|(_, v)| v)
        .collect();
    let measured = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    (predicted, measured)
}

#[test]
fn predictor_tracks_light_load_at_full_speed() {
    let (predicted, measured) = validate_level(5, 20.0);
    let err = (measured - predicted).abs() / predicted;
    assert!(
        err < 0.15,
        "light-load error {err}: predicted {predicted} measured {measured}"
    );
}

#[test]
fn predictor_tracks_moderate_load_at_full_speed() {
    let (predicted, measured) = validate_level(5, 60.0);
    let err = (measured - predicted).abs() / predicted;
    assert!(
        err < 0.25,
        "moderate-load error {err}: predicted {predicted} measured {measured}"
    );
}

#[test]
fn predictor_tracks_slow_level() {
    let (predicted, measured) = validate_level(0, 20.0);
    let err = (measured - predicted).abs() / predicted;
    assert!(
        err < 0.25,
        "slow-level error {err}: predicted {predicted} measured {measured}"
    );
}

#[test]
fn queueing_blowup_direction_is_right() {
    // Doubling the load must raise both predicted and measured response,
    // and the predictor must not *under*-call the blow-up direction.
    let (p1, m1) = validate_level(0, 20.0);
    let (p2, m2) = validate_level(0, 60.0);
    assert!(p2 > p1, "prediction must grow with load");
    assert!(m2 > m1, "measurement must grow with load");
}
