//! End-to-end fault-injection properties: deterministic faulted runs,
//! conservation of the logical address space through failure + rebuild,
//! and the Hibernator guard's forced boost on disk failure.

use array::{
    run_policy, ArrayConfig, ArrayState, BasePolicy, PowerPolicy, Redundancy, RunOptions,
    RunReport, Simulation,
};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::{SimDuration, SimTime};
use workload::WorkloadSpec;

const DURATION_S: f64 = 1200.0;

fn scenario() -> (ArrayConfig, workload::Trace) {
    let mut spec = WorkloadSpec::oltp(DURATION_S, 40.0);
    spec.extents = 2048;
    let trace = spec.generate(91);
    let mut config = ArrayConfig::default_for_volume(2 << 30);
    config.disks = 8;
    config.redundancy = Redundancy::Raid5Like;
    (config, trace)
}

fn storm() -> FaultPlan {
    FaultPlan {
        schedule: FaultSchedule::new(vec![
            FaultEvent {
                time: SimTime::from_secs(300.0),
                disk: 2,
                kind: FaultKind::TransientBurst {
                    error_prob: 0.15,
                    duration_s: 100.0,
                },
            },
            FaultEvent {
                time: SimTime::from_secs(350.0),
                disk: 2,
                kind: FaultKind::SlowTransition {
                    factor: 2.5,
                    duration_s: 200.0,
                },
            },
            FaultEvent {
                time: SimTime::from_secs(400.0),
                disk: 2,
                kind: FaultKind::DiskFailure,
            },
        ]),
        config: FaultConfig {
            transient_error_prob: 0.002,
            base_failure_rate_per_hour: 0.01,
            ..FaultConfig::default()
        },
    }
}

fn run_once() -> RunReport {
    let (config, trace) = scenario();
    run_policy(
        config,
        BasePolicy,
        &trace,
        RunOptions::with_faults(DURATION_S, storm()),
    )
}

/// Fixed seed + fixed fault plan ⇒ bit-identical run report.
#[test]
fn faulted_run_is_bit_identical() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.incomplete, b.incomplete);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.faults, b.faults, "fault outcomes must replay exactly");
    assert_eq!(a.reliability, b.reliability, "ledgers must replay exactly");
    assert_eq!(
        a.energy.total_joules().to_bits(),
        b.energy.total_joules().to_bits(),
        "energy must be bit-identical"
    );
    assert_eq!(
        a.response.mean().to_bits(),
        b.response.mean().to_bits(),
        "response moments must be bit-identical"
    );
    // And the storm actually happened.
    assert!(a.faults.disk_failures >= 1);
    assert!(a.faults.transient_errors > 0);
}

/// A probing policy: checks the remap bijection on every tick and records
/// how many chunks remain mapped to failed disks.
#[derive(Default)]
struct RemapProbe {
    failed: std::collections::HashSet<usize>,
    /// Chunks still on failed disks at the most recent tick.
    stranded_at_last_tick: u32,
    ticks: u64,
}

impl PowerPolicy for RemapProbe {
    fn name(&self) -> &str {
        "RemapProbe"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(10.0))
    }

    fn on_tick(&mut self, _now: SimTime, state: &mut ArrayState) {
        state
            .remap
            .check_invariants()
            .expect("remap bijection violated mid-run");
        self.stranded_at_last_tick = self
            .failed
            .iter()
            .map(|&d| state.remap.occupancy(array::DiskId(d)))
            .sum();
        self.ticks += 1;
    }

    fn on_disk_failure(&mut self, _now: SimTime, disk: usize, _state: &mut ArrayState) {
        self.failed.insert(disk);
    }
}

/// After a failure, rebuild moves every chunk off the dead disk and the
/// remap stays a bijection throughout — no logical block is lost or mapped
/// twice. Request conservation holds with the lost counter included.
#[test]
fn rebuild_conserves_address_space_and_requests() {
    let (config, trace) = scenario();
    let total = trace.len() as u64;
    let sim = Simulation::new(
        config,
        RemapProbe::default(),
        &trace,
        RunOptions::with_faults(DURATION_S, storm()),
    );
    let (report, probe) = sim.run_returning_policy();
    assert!(probe.ticks > 0, "probe never ticked");
    assert!(report.faults.disk_failures >= 1);
    assert!(report.faults.rebuild_chunks > 0, "rebuild must be queued");
    assert!(
        report.faults.rebuild_completed_s.is_some(),
        "rebuild must finish within the horizon: {:?}",
        report.faults
    );
    assert_eq!(
        probe.stranded_at_last_tick, 0,
        "chunks left mapped to a dead disk"
    );
    assert_eq!(
        report.completed + report.incomplete + report.faults.lost_requests,
        total,
        "requests must be conserved: {:?}",
        report.faults
    );
}

/// A disk failure forces the Hibernator guard to boost immediately.
#[test]
fn hibernator_boosts_on_disk_failure() {
    let (config, trace) = scenario();
    let total = trace.len() as u64;
    let mut cfg = HibernatorConfig::for_goal(0.060);
    cfg.epoch = SimDuration::from_secs(200.0);
    cfg.heat_tau = SimDuration::from_secs(200.0);
    let sim = Simulation::new(
        config,
        Hibernator::new(cfg),
        &trace,
        RunOptions::with_faults(DURATION_S, storm()),
    );
    let (report, policy) = sim.run_returning_policy();
    assert!(report.faults.disk_failures >= 1);
    assert!(
        policy.stats().boosts >= 1,
        "failure must force a boost: {:?}",
        policy.stats()
    );
    assert_eq!(
        report.completed + report.incomplete + report.faults.lost_requests,
        total
    );
    // The ledger marks exactly the failed disks.
    let failed = report.reliability.iter().filter(|l| l.failed).count() as u64;
    assert_eq!(failed, report.faults.disk_failures);
}
