//! The bring-your-own-trace pipeline: generate → persist → reload →
//! simulate must be equivalent to simulating the in-memory trace, for both
//! persistence formats.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use proptest::prelude::*;
use simkit::SimTime;
use workload::trace_io::{read_csv, read_jsonl, write_csv, write_jsonl};
use workload::{Trace, VolumeIoKind, VolumeRequest, WorkloadSpec};

fn mini_config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(1 << 30);
    c.disks = 4;
    c
}

fn run_fingerprint(trace: &Trace) -> (u64, u64) {
    let r = run_policy(
        mini_config(),
        BasePolicy,
        trace,
        RunOptions::for_horizon(300.0),
    );
    (r.completed, r.energy.total_joules().to_bits())
}

#[test]
fn jsonl_roundtrip_simulates_identically() {
    let mut spec = WorkloadSpec::oltp(120.0, 30.0);
    spec.extents = 512;
    let trace = spec.generate(3);
    let mut buf = Vec::new();
    write_jsonl(&trace, &mut buf).unwrap();
    let back = read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(run_fingerprint(&trace), run_fingerprint(&back));
}

#[test]
fn csv_roundtrip_simulates_identically() {
    let mut spec = WorkloadSpec::cello_like(120.0, 30.0);
    spec.extents = 512;
    let trace = spec.generate(4);
    let mut buf = Vec::new();
    write_csv(&trace, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    // CSV prints times with 9 decimal places; at second-scale magnitudes the
    // round-trip is exact enough that the event order — and therefore the
    // simulation — is unchanged.
    assert_eq!(back.len(), trace.len());
    assert_eq!(run_fingerprint(&trace).0, run_fingerprint(&back).0);
}

#[test]
fn hand_written_trace_drives_the_simulator() {
    let csv = "time_s,sector,sectors,kind\n\
               0.5,0,16,R\n\
               1.0,1048576,32,W\n\
               1.5,2048,16,r\n\
               2.0,4096,8,w\n";
    let trace = read_csv(csv.as_bytes()).unwrap();
    let r = run_policy(
        mini_config(),
        BasePolicy,
        &trace,
        RunOptions::for_horizon(10.0),
    );
    assert_eq!(r.completed, 4);
    assert_eq!(r.fg_sectors, 16 + 32 + 16 + 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary (valid) request lists survive the CSV pipeline and
    /// simulate to completion.
    #[test]
    fn arbitrary_traces_roundtrip_and_complete(
        raw in proptest::collection::vec((0.0f64..200.0, 0u64..1_000_000, 1u32..128, any::<bool>()), 1..50)
    ) {
        let reqs: Vec<VolumeRequest> = raw
            .into_iter()
            .map(|(t, sector, sectors, is_read)| VolumeRequest {
                time: SimTime::from_secs(t),
                sector,
                sectors,
                kind: if is_read { VolumeIoKind::Read } else { VolumeIoKind::Write },
            })
            .collect();
        let trace = Trace::from_requests(reqs);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        let r = run_policy(
            mini_config(),
            BasePolicy,
            &back,
            RunOptions::for_horizon(400.0),
        );
        prop_assert_eq!(r.completed as usize, trace.len());
        prop_assert_eq!(r.incomplete, 0);
    }
}
