//! The bring-your-own-trace pipeline: generate → persist → reload →
//! simulate must be equivalent to simulating the in-memory trace, for both
//! persistence formats.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use simkit::{DetRng, SimTime};
use workload::trace_io::{read_csv, read_jsonl, write_csv, write_jsonl};
use workload::{Trace, VolumeIoKind, VolumeRequest, WorkloadSpec};

fn mini_config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(1 << 30);
    c.disks = 4;
    c
}

fn run_fingerprint(trace: &Trace) -> (u64, u64) {
    let r = run_policy(
        mini_config(),
        BasePolicy,
        trace,
        RunOptions::for_horizon(300.0),
    );
    (r.completed, r.energy.total_joules().to_bits())
}

#[test]
fn jsonl_roundtrip_simulates_identically() {
    let mut spec = WorkloadSpec::oltp(120.0, 30.0);
    spec.extents = 512;
    let trace = spec.generate(3);
    let mut buf = Vec::new();
    write_jsonl(&trace, &mut buf).unwrap();
    let back = read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(run_fingerprint(&trace), run_fingerprint(&back));
}

#[test]
fn csv_roundtrip_simulates_identically() {
    let mut spec = WorkloadSpec::cello_like(120.0, 30.0);
    spec.extents = 512;
    let trace = spec.generate(4);
    let mut buf = Vec::new();
    write_csv(&trace, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    // CSV prints times with 9 decimal places; at second-scale magnitudes the
    // round-trip is exact enough that the event order — and therefore the
    // simulation — is unchanged.
    assert_eq!(back.len(), trace.len());
    assert_eq!(run_fingerprint(&trace).0, run_fingerprint(&back).0);
}

#[test]
fn hand_written_trace_drives_the_simulator() {
    let csv = "time_s,sector,sectors,kind\n\
               0.5,0,16,R\n\
               1.0,1048576,32,W\n\
               1.5,2048,16,r\n\
               2.0,4096,8,w\n";
    let trace = read_csv(csv.as_bytes()).unwrap();
    let r = run_policy(
        mini_config(),
        BasePolicy,
        &trace,
        RunOptions::for_horizon(10.0),
    );
    assert_eq!(r.completed, 4);
    assert_eq!(r.fg_sectors, 16 + 32 + 16 + 8);
}

/// Arbitrary (valid) request lists survive the CSV pipeline and
/// simulate to completion.
#[test]
fn arbitrary_traces_roundtrip_and_complete() {
    for case in 0..16u64 {
        let mut rng = DetRng::new(0x7ACE ^ case, "pipeline-trace");
        let n = 1 + rng.below(49) as usize;
        let reqs: Vec<VolumeRequest> = (0..n)
            .map(|_| VolumeRequest {
                time: SimTime::from_secs(rng.uniform(0.0, 200.0)),
                sector: rng.below(1_000_000),
                sectors: 1 + rng.below(127) as u32,
                kind: if rng.chance(0.5) {
                    VolumeIoKind::Read
                } else {
                    VolumeIoKind::Write
                },
            })
            .collect();
        let trace = Trace::from_requests(reqs);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len(), "case {case}");
        let r = run_policy(
            mini_config(),
            BasePolicy,
            &back,
            RunOptions::for_horizon(400.0),
        );
        assert_eq!(r.completed as usize, trace.len(), "case {case}");
        assert_eq!(r.incomplete, 0, "case {case}");
    }
}
